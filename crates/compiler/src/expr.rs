//! The analyzable scalar-expression language.
//!
//! In the paper, UDFs are ordinary Scala lambdas whose ASTs the macro can
//! inspect. The Rust substitute is this small expression language: lambdas
//! are [`Lambda`]s over [`ScalarExpr`] bodies, which the compiler can
//! traverse, substitute into, and rewrite. Crucially, scalar expressions can
//! *nest bag computations* — [`ScalarExpr::Fold`] embeds an aggregate over a
//! [`BagExpr`](crate::bag_expr::BagExpr) (e.g. `blacklist.exists(...)` inside
//! a filter predicate, or `ctrds.min_by(...)` inside a map UDF). This nesting
//! is exactly what the unnesting and broadcast-insertion optimizations
//! operate on.

use std::collections::HashSet;
use std::fmt;

use crate::bag_expr::BagExpr;
use crate::value::Value;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (ints, floats, vectors element-wise).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (vector / scalar supported).
    Div,
    /// Remainder.
    Mod,
    /// Equality (total, per `Value::eq`).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical conjunction (strict).
    And,
    /// Logical disjunction (strict).
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Builtin functions available to UDFs.
///
/// These stand in for library calls the Scala embedding would see as opaque
/// method calls; keeping them enumerated preserves analyzability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BuiltinFn {
    /// Square root of a float.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Euclidean distance between two vectors.
    Dist,
    /// Element-wise vector addition.
    VecAdd,
    /// Vector divided by a scalar.
    VecDiv,
    /// Vector scaled by a scalar.
    VecScale,
    /// Binary minimum.
    MinOf,
    /// Binary maximum.
    MaxOf,
    /// Substring containment test on strings.
    StrContains,
    /// String length.
    StrLen,
    /// Stable integer hash of any value (used by synthetic feature UDFs).
    HashOf,
}

impl BuiltinFn {
    /// The function's arity.
    pub fn arity(&self) -> usize {
        match self {
            BuiltinFn::Sqrt | BuiltinFn::Abs | BuiltinFn::StrLen | BuiltinFn::HashOf => 1,
            _ => 2,
        }
    }

    /// Relative CPU weight of one call, in units of "one arithmetic op".
    ///
    /// Most builtins are cheap; a few stand in for heavy UDF work the paper's
    /// workloads contain: `HashOf` models a trained feature extractor /
    /// classifier scoring a ~100 KB email body, `Dist` a vector distance.
    /// The engine's cost model multiplies per-record CPU by the static
    /// weight of the operator's lambdas.
    pub fn cpu_weight(&self) -> f64 {
        match self {
            // Stands in for a trained feature extractor / classifier scoring
            // a ~100 KB email body: ~10 ms of real work per record.
            BuiltinFn::HashOf => 300_000.0,
            BuiltinFn::Dist => 40.0,
            BuiltinFn::VecAdd | BuiltinFn::VecDiv | BuiltinFn::VecScale => 8.0,
            // Flat call overhead only — the length-proportional scan is
            // charged separately via [`byte_weight`](Self::byte_weight).
            BuiltinFn::StrContains => 4.0,
            _ => 1.0,
        }
    }

    /// Relative CPU weight of one call **per input byte**, for builtins whose
    /// work scales with operand length rather than being O(1) per call.
    /// `StrContains` scans its haystack; everything else is length-free (or,
    /// like `HashOf`, already modeled as a flat stand-in for fixed-size
    /// work). The engine charges this against the operator's input bytes on
    /// the driver, so the charge is identical whichever evaluation tier —
    /// interpreter, compiled, or vectorized — actually ran the rows.
    pub fn byte_weight(&self) -> f64 {
        match self {
            BuiltinFn::StrContains => 0.125,
            _ => 0.0,
        }
    }

    /// The surface name (for pretty printing).
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinFn::Sqrt => "sqrt",
            BuiltinFn::Abs => "abs",
            BuiltinFn::Dist => "dist",
            BuiltinFn::VecAdd => "vec_add",
            BuiltinFn::VecDiv => "vec_div",
            BuiltinFn::VecScale => "vec_scale",
            BuiltinFn::MinOf => "min_of",
            BuiltinFn::MaxOf => "max_of",
            BuiltinFn::StrContains => "str_contains",
            BuiltinFn::StrLen => "str_len",
            BuiltinFn::HashOf => "hash_of",
        }
    }
}

/// The distinguishing tag of a reified fold. `Exists` is special-cased by the
/// unnesting rule; the rest matter only for pretty printing and reports.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FoldKind {
    /// Numeric sum.
    Sum,
    /// Element count.
    Count,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
    /// Existential quantifier over a predicate.
    Exists,
    /// Universal quantifier over a predicate.
    Forall,
    /// Emptiness test.
    IsEmpty,
    /// Element minimizing a key.
    MinBy,
    /// Element maximizing a key.
    MaxBy,
    /// A fused composite produced by banana split.
    BananaSplit,
    /// User-provided fold.
    Custom,
}

/// A reified fold: `(zero, sng, uni)` in expression form, so the compiler can
/// combine folds (banana split) and fuse them into groupings.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FoldOp {
    /// Recognizable shape of the fold.
    pub kind: FoldKind,
    /// Closed expression for the `emp` substitute.
    pub zero: Box<ScalarExpr>,
    /// Unary lambda for the `sng` substitute.
    pub sng: Lambda,
    /// Binary lambda for the `uni` substitute (associative + commutative).
    pub uni: Lambda,
}

impl FoldOp {
    /// `sum`: fold(0.0, id, +).
    pub fn sum() -> FoldOp {
        FoldOp {
            kind: FoldKind::Sum,
            zero: Box::new(ScalarExpr::Lit(Value::Float(0.0))),
            sng: Lambda::new(["x"], ScalarExpr::var("x")),
            uni: Lambda::new(["a", "b"], ScalarExpr::var("a").add(ScalarExpr::var("b"))),
        }
    }

    /// Vector sum with a given zero vector.
    pub fn vec_sum(dim: usize) -> FoldOp {
        FoldOp {
            kind: FoldKind::Sum,
            zero: Box::new(ScalarExpr::Lit(Value::vector(vec![0.0; dim]))),
            sng: Lambda::new(["x"], ScalarExpr::var("x")),
            uni: Lambda::new(
                ["a", "b"],
                ScalarExpr::call(
                    BuiltinFn::VecAdd,
                    vec![ScalarExpr::var("a"), ScalarExpr::var("b")],
                ),
            ),
        }
    }

    /// `count`: fold(0, _ ⟼ 1, +).
    pub fn count() -> FoldOp {
        FoldOp {
            kind: FoldKind::Count,
            zero: Box::new(ScalarExpr::Lit(Value::Int(0))),
            sng: Lambda::new(["x"], ScalarExpr::Lit(Value::Int(1))),
            uni: Lambda::new(["a", "b"], ScalarExpr::var("a").add(ScalarExpr::var("b"))),
        }
    }

    /// `min`: fold(null, id, min-combining with null as unit).
    pub fn min() -> FoldOp {
        FoldOp {
            kind: FoldKind::Min,
            zero: Box::new(ScalarExpr::Lit(Value::Null)),
            sng: Lambda::new(["x"], ScalarExpr::var("x")),
            uni: Lambda::new(
                ["a", "b"],
                ScalarExpr::call(
                    BuiltinFn::MinOf,
                    vec![ScalarExpr::var("a"), ScalarExpr::var("b")],
                ),
            ),
        }
    }

    /// `max`: fold(null, id, max-combining with null as unit).
    pub fn max() -> FoldOp {
        FoldOp {
            kind: FoldKind::Max,
            zero: Box::new(ScalarExpr::Lit(Value::Null)),
            sng: Lambda::new(["x"], ScalarExpr::var("x")),
            uni: Lambda::new(
                ["a", "b"],
                ScalarExpr::call(
                    BuiltinFn::MaxOf,
                    vec![ScalarExpr::var("a"), ScalarExpr::var("b")],
                ),
            ),
        }
    }

    /// `exists p`: fold(false, p, ∨). The predicate is the `sng` lambda.
    pub fn exists(p: Lambda) -> FoldOp {
        FoldOp {
            kind: FoldKind::Exists,
            zero: Box::new(ScalarExpr::Lit(Value::Bool(false))),
            sng: p,
            uni: Lambda::new(["a", "b"], ScalarExpr::var("a").or(ScalarExpr::var("b"))),
        }
    }

    /// `forall p`: fold(true, p, ∧).
    pub fn forall(p: Lambda) -> FoldOp {
        FoldOp {
            kind: FoldKind::Forall,
            zero: Box::new(ScalarExpr::Lit(Value::Bool(true))),
            sng: p,
            uni: Lambda::new(["a", "b"], ScalarExpr::var("a").and(ScalarExpr::var("b"))),
        }
    }

    /// `is_empty`: fold(true, _ ⟼ false, ∧).
    pub fn is_empty() -> FoldOp {
        FoldOp {
            kind: FoldKind::IsEmpty,
            zero: Box::new(ScalarExpr::Lit(Value::Bool(true))),
            sng: Lambda::new(["x"], ScalarExpr::Lit(Value::Bool(false))),
            uni: Lambda::new(["a", "b"], ScalarExpr::var("a").and(ScalarExpr::var("b"))),
        }
    }

    /// `min_by key`: keeps the element minimizing `key` (null = absent).
    pub fn min_by(key: Lambda) -> FoldOp {
        Self::extreme_by(key, FoldKind::MinBy)
    }

    /// `max_by key`: keeps the element maximizing `key`.
    pub fn max_by(key: Lambda) -> FoldOp {
        Self::extreme_by(key, FoldKind::MaxBy)
    }

    fn extreme_by(key: Lambda, kind: FoldKind) -> FoldOp {
        assert_eq!(key.params.len(), 1, "min_by/max_by key must be unary");
        let ka = key.apply(&[ScalarExpr::var("a")]);
        let kb = key.apply(&[ScalarExpr::var("b")]);
        let keep_a = if kind == FoldKind::MinBy {
            ka.le(kb)
        } else {
            ka.ge(kb)
        };
        FoldOp {
            kind,
            zero: Box::new(ScalarExpr::Lit(Value::Null)),
            sng: Lambda::new(["x"], ScalarExpr::var("x")),
            uni: Lambda::new(
                ["a", "b"],
                // null acts as the unit of the combining function.
                ScalarExpr::If(
                    Box::new(ScalarExpr::var("a").eq_null()),
                    Box::new(ScalarExpr::var("b")),
                    Box::new(ScalarExpr::If(
                        Box::new(ScalarExpr::var("b").eq_null()),
                        Box::new(ScalarExpr::var("a")),
                        Box::new(ScalarExpr::If(
                            Box::new(keep_a),
                            Box::new(ScalarExpr::var("a")),
                            Box::new(ScalarExpr::var("b")),
                        )),
                    )),
                ),
            ),
        }
    }

    /// A custom fold from explicit components.
    pub fn custom(zero: ScalarExpr, sng: Lambda, uni: Lambda) -> FoldOp {
        FoldOp {
            kind: FoldKind::Custom,
            zero: Box::new(zero),
            sng,
            uni,
        }
    }

    /// **Banana split** over the expression language: combines `folds` into a
    /// single fold over tuples, one slot per input fold
    /// (paper, Section 4.2.2).
    pub fn banana_split(folds: &[FoldOp]) -> FoldOp {
        assert!(!folds.is_empty(), "banana split needs at least one fold");
        let zero = ScalarExpr::Tuple(folds.iter().map(|f| (*f.zero).clone()).collect());
        let sng = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(
                folds
                    .iter()
                    .map(|f| f.sng.apply(&[ScalarExpr::var("x")]))
                    .collect(),
            ),
        );
        let uni = Lambda::new(
            ["a", "b"],
            ScalarExpr::Tuple(
                folds
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        f.uni
                            .apply(&[ScalarExpr::var("a").get(i), ScalarExpr::var("b").get(i)])
                    })
                    .collect(),
            ),
        );
        FoldOp {
            kind: FoldKind::BananaSplit,
            zero: Box::new(zero),
            sng,
            uni,
        }
    }
}

/// A lambda: named parameters over a scalar body.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Lambda {
    /// Parameter names bound in `body`.
    pub params: Vec<String>,
    /// The body expression.
    pub body: ScalarExpr,
}

impl Lambda {
    /// Creates a lambda.
    pub fn new<const N: usize>(params: [&str; N], body: ScalarExpr) -> Lambda {
        Lambda {
            params: params.iter().map(|s| s.to_string()).collect(),
            body,
        }
    }

    /// Beta-reduction: substitutes `args` for the parameters in the body.
    ///
    /// Assumes globally fresh binder names (see [`crate::freshen`]), so no
    /// capture checks are needed at the call sites inside the compiler.
    pub fn apply(&self, args: &[ScalarExpr]) -> ScalarExpr {
        assert_eq!(
            args.len(),
            self.params.len(),
            "lambda arity mismatch: expected {}, got {}",
            self.params.len(),
            args.len()
        );
        let mut body = self.body.clone();
        for (p, a) in self.params.iter().zip(args) {
            body = body.substitute(p, a);
        }
        body
    }

    /// Free variables of the lambda (body free vars minus parameters).
    pub fn free_vars(&self) -> HashSet<String> {
        let mut fv = self.body.free_vars();
        for p in &self.params {
            fv.remove(p);
        }
        fv
    }

    /// Static CPU cost of one application of this lambda (see
    /// [`ScalarExpr::static_cost`]).
    pub fn static_cost(&self) -> f64 {
        self.body.static_cost()
    }

    /// Static per-input-byte CPU cost of one application (see
    /// [`ScalarExpr::static_byte_cost`]).
    pub fn static_byte_cost(&self) -> f64 {
        self.body.static_byte_cost()
    }

    /// Alpha-equivalence: structural equality modulo parameter names.
    ///
    /// Used to compare partitioning keys (e.g. "is this input already hash
    /// partitioned by the join key?") without being confused by freshened
    /// binder names.
    pub fn alpha_eq(&self, other: &Lambda) -> bool {
        if self.params.len() != other.params.len() {
            return false;
        }
        let canon = |lam: &Lambda| {
            let mut body = lam.body.clone();
            for (i, p) in lam.params.iter().enumerate() {
                body = body.substitute(p, &ScalarExpr::var(format!("§{i}")));
            }
            body
        };
        canon(self) == canon(other)
    }
}

/// A scalar expression — the body language of UDFs and comprehension heads.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    /// A literal value.
    Lit(Value),
    /// A variable reference (lambda parameter, comprehension generator
    /// variable, or driver-program variable).
    Var(String),
    /// Positional field access `e.i`.
    Field(Box<ScalarExpr>, usize),
    /// Binary operation.
    BinOp(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Unary operation.
    UnOp(UnOp, Box<ScalarExpr>),
    /// Builtin function application.
    Call(BuiltinFn, Vec<ScalarExpr>),
    /// Tuple construction.
    Tuple(Vec<ScalarExpr>),
    /// Conditional.
    If(Box<ScalarExpr>, Box<ScalarExpr>, Box<ScalarExpr>),
    /// A fold over a bag expression — the bridge from bag computations back
    /// to scalars (`xs.sum()`, `bl.exists(p)`, `ctrds.min_by(k)` …).
    Fold(Box<BagExpr>, Box<FoldOp>),
    /// A bag expression as a first-class value (group values in heads,
    /// flatMap bodies, driver-side sequences).
    BagOf(Box<BagExpr>),
}

impl ScalarExpr {
    /// Variable reference.
    pub fn var(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Var(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Builtin call.
    pub fn call(f: BuiltinFn, args: Vec<ScalarExpr>) -> ScalarExpr {
        assert_eq!(
            args.len(),
            f.arity(),
            "{} expects {} args",
            f.name(),
            f.arity()
        );
        ScalarExpr::Call(f, args)
    }

    /// Positional field access.
    pub fn get(self, i: usize) -> ScalarExpr {
        ScalarExpr::Field(Box::new(self), i)
    }

    fn bin(op: BinOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::BinOp(op, Box::new(l), Box::new(r))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Mul, self, rhs)
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Div, self, rhs)
    }

    /// `self % rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Mod, self, rhs)
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Eq, self, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Ne, self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Lt, self, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Le, self, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Gt, self, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Ge, self, rhs)
    }

    /// `self && rhs`.
    pub fn and(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::And, self, rhs)
    }

    /// `self || rhs`.
    pub fn or(self, rhs: ScalarExpr) -> ScalarExpr {
        Self::bin(BinOp::Or, self, rhs)
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> ScalarExpr {
        ScalarExpr::UnOp(UnOp::Not, Box::new(self))
    }

    /// `self == null`.
    pub fn eq_null(self) -> ScalarExpr {
        self.eq(ScalarExpr::Lit(Value::Null))
    }

    /// Static per-evaluation CPU cost estimate: the number of expression
    /// nodes, with builtins weighted by [`BuiltinFn::cpu_weight`]. Nested
    /// folds count their component lambdas once (the engine separately
    /// accounts for broadcast-bag sizes they iterate over).
    pub fn static_cost(&self) -> f64 {
        match self {
            ScalarExpr::Lit(_) | ScalarExpr::Var(_) => 1.0,
            ScalarExpr::Field(inner, _) => 1.0 + inner.static_cost(),
            ScalarExpr::UnOp(_, inner) => 1.0 + inner.static_cost(),
            ScalarExpr::BinOp(_, l, r) => 1.0 + l.static_cost() + r.static_cost(),
            ScalarExpr::Call(f, args) => {
                f.cpu_weight() + args.iter().map(ScalarExpr::static_cost).sum::<f64>()
            }
            ScalarExpr::Tuple(args) => 1.0 + args.iter().map(ScalarExpr::static_cost).sum::<f64>(),
            ScalarExpr::If(c, t, e) => 1.0 + c.static_cost() + t.static_cost().max(e.static_cost()),
            ScalarExpr::Fold(_, fold) => {
                4.0 + fold.zero.static_cost() + fold.sng.static_cost() + fold.uni.static_cost()
            }
            ScalarExpr::BagOf(_) => 4.0,
        }
    }

    /// Static per-input-byte CPU cost: the sum of [`BuiltinFn::byte_weight`]
    /// over every call site, mirroring the [`static_cost`](Self::static_cost)
    /// traversal. Non-zero only for bodies containing length-proportional
    /// builtins (today: `StrContains`); `If` takes the worse branch, like
    /// `static_cost`.
    pub fn static_byte_cost(&self) -> f64 {
        match self {
            ScalarExpr::Lit(_) | ScalarExpr::Var(_) => 0.0,
            ScalarExpr::Field(inner, _) | ScalarExpr::UnOp(_, inner) => inner.static_byte_cost(),
            ScalarExpr::BinOp(_, l, r) => l.static_byte_cost() + r.static_byte_cost(),
            ScalarExpr::Call(f, args) => {
                f.byte_weight() + args.iter().map(ScalarExpr::static_byte_cost).sum::<f64>()
            }
            ScalarExpr::Tuple(args) => args.iter().map(ScalarExpr::static_byte_cost).sum::<f64>(),
            ScalarExpr::If(c, t, e) => {
                c.static_byte_cost() + t.static_byte_cost().max(e.static_byte_cost())
            }
            ScalarExpr::Fold(_, fold) => {
                fold.zero.static_byte_cost()
                    + fold.sng.static_byte_cost()
                    + fold.uni.static_byte_cost()
            }
            ScalarExpr::BagOf(_) => 0.0,
        }
    }

    /// Free variables of this expression, including those of nested bag
    /// expressions. Driver variables referenced inside dataflow UDFs show up
    /// here — the seed of broadcast insertion (paper Fig. 3b).
    pub fn free_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.collect_free_vars(&mut HashSet::new(), &mut out);
        out
    }

    pub(crate) fn collect_free_vars(&self, bound: &mut HashSet<String>, out: &mut HashSet<String>) {
        match self {
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Var(name) => {
                if !bound.contains(name) {
                    out.insert(name.clone());
                }
            }
            ScalarExpr::Field(e, _) => e.collect_free_vars(bound, out),
            ScalarExpr::BinOp(_, l, r) => {
                l.collect_free_vars(bound, out);
                r.collect_free_vars(bound, out);
            }
            ScalarExpr::UnOp(_, e) => e.collect_free_vars(bound, out),
            ScalarExpr::Call(_, args) | ScalarExpr::Tuple(args) => {
                for a in args {
                    a.collect_free_vars(bound, out);
                }
            }
            ScalarExpr::If(c, t, e) => {
                c.collect_free_vars(bound, out);
                t.collect_free_vars(bound, out);
                e.collect_free_vars(bound, out);
            }
            ScalarExpr::Fold(bag, fold) => {
                bag.collect_free_vars(bound, out);
                fold.zero.collect_free_vars(bound, out);
                for lam in [&fold.sng, &fold.uni] {
                    let added: Vec<String> = lam
                        .params
                        .iter()
                        .filter(|p| bound.insert((*p).clone()))
                        .cloned()
                        .collect();
                    lam.body.collect_free_vars(bound, out);
                    for p in added {
                        bound.remove(&p);
                    }
                }
            }
            ScalarExpr::BagOf(bag) => bag.collect_free_vars(bound, out),
        }
    }

    /// Substitutes `replacement` for free occurrences of `name`.
    ///
    /// Binders are assumed globally fresh (see [`crate::freshen`]); the
    /// substitution still respects shadowing binders for robustness.
    pub fn substitute(&self, name: &str, replacement: &ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Var(n) => {
                if n == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            ScalarExpr::Field(e, i) => {
                ScalarExpr::Field(Box::new(e.substitute(name, replacement)), *i)
            }
            ScalarExpr::BinOp(op, l, r) => ScalarExpr::BinOp(
                *op,
                Box::new(l.substitute(name, replacement)),
                Box::new(r.substitute(name, replacement)),
            ),
            ScalarExpr::UnOp(op, e) => {
                ScalarExpr::UnOp(*op, Box::new(e.substitute(name, replacement)))
            }
            ScalarExpr::Call(f, args) => ScalarExpr::Call(
                *f,
                args.iter()
                    .map(|a| a.substitute(name, replacement))
                    .collect(),
            ),
            ScalarExpr::Tuple(args) => ScalarExpr::Tuple(
                args.iter()
                    .map(|a| a.substitute(name, replacement))
                    .collect(),
            ),
            ScalarExpr::If(c, t, e) => ScalarExpr::If(
                Box::new(c.substitute(name, replacement)),
                Box::new(t.substitute(name, replacement)),
                Box::new(e.substitute(name, replacement)),
            ),
            ScalarExpr::Fold(bag, fold) => ScalarExpr::Fold(
                Box::new(bag.substitute(name, replacement)),
                Box::new(FoldOp {
                    kind: fold.kind.clone(),
                    zero: Box::new(fold.zero.substitute(name, replacement)),
                    sng: substitute_in_lambda(&fold.sng, name, replacement),
                    uni: substitute_in_lambda(&fold.uni, name, replacement),
                }),
            ),
            ScalarExpr::BagOf(bag) => {
                ScalarExpr::BagOf(Box::new(bag.substitute(name, replacement)))
            }
        }
    }
}

/// Substitution under a lambda binder, respecting shadowing.
pub(crate) fn substitute_in_lambda(lam: &Lambda, name: &str, replacement: &ScalarExpr) -> Lambda {
    if lam.params.iter().any(|p| p == name) {
        lam.clone()
    } else {
        Lambda {
            params: lam.params.clone(),
            body: lam.body.substitute(name, replacement),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Lit(v) => write!(f, "{v}"),
            ScalarExpr::Var(n) => write!(f, "{n}"),
            ScalarExpr::Field(e, i) => write!(f, "{e}.{i}"),
            ScalarExpr::BinOp(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                write!(f, "({l} {sym} {r})")
            }
            ScalarExpr::UnOp(UnOp::Not, e) => write!(f, "!({e})"),
            ScalarExpr::UnOp(UnOp::Neg, e) => write!(f, "-({e})"),
            ScalarExpr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Tuple(args) => {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::If(c, t, e) => write!(f, "if ({c}) {t} else {e}"),
            ScalarExpr::Fold(bag, fold) => write!(f, "fold[{:?}]({bag})", fold.kind),
            ScalarExpr::BagOf(bag) => write!(f, "bag({bag})"),
        }
    }
}

impl fmt::Display for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}. {}", self.params.join(","), self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_apply_substitutes_params() {
        let lam = Lambda::new(["x"], ScalarExpr::var("x").add(ScalarExpr::lit(1i64)));
        let applied = lam.apply(&[ScalarExpr::lit(41i64)]);
        assert_eq!(applied, ScalarExpr::lit(41i64).add(ScalarExpr::lit(1i64)));
    }

    #[test]
    fn free_vars_exclude_bound_params() {
        let lam = Lambda::new(["x"], ScalarExpr::var("x").add(ScalarExpr::var("y")));
        let fv = lam.free_vars();
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn substitution_respects_shadowing_in_folds() {
        // fold sng = λx. x + y ; substituting for x must not touch the bound x.
        let fold = FoldOp::custom(
            ScalarExpr::lit(0i64),
            Lambda::new(["x"], ScalarExpr::var("x").add(ScalarExpr::var("y"))),
            Lambda::new(["a", "b"], ScalarExpr::var("a").add(ScalarExpr::var("b"))),
        );
        let e = ScalarExpr::Fold(
            Box::new(crate::bag_expr::BagExpr::Read {
                source: "xs".into(),
            }),
            Box::new(fold),
        );
        let subst = e.substitute("x", &ScalarExpr::lit(9i64));
        // The λx binder shadows: body unchanged.
        assert_eq!(subst, e);
        let subst_y = e.substitute("y", &ScalarExpr::lit(9i64));
        assert_ne!(subst_y, e);
    }

    #[test]
    fn banana_split_tuples_components() {
        let split = FoldOp::banana_split(&[FoldOp::sum(), FoldOp::count()]);
        assert_eq!(split.kind, FoldKind::BananaSplit);
        match &*split.zero {
            ScalarExpr::Tuple(zs) => assert_eq!(zs.len(), 2),
            other => panic!("expected tuple zero, got {other:?}"),
        }
        match &split.sng.body {
            ScalarExpr::Tuple(ss) => assert_eq!(ss.len(), 2),
            other => panic!("expected tuple sng, got {other:?}"),
        }
    }

    #[test]
    fn fold_free_vars_see_through_fold_lambdas() {
        // exists(λl. l.0 == e.0) over Ref("bl") — free vars are {bl is in bag, e}.
        let pred = Lambda::new(
            ["l"],
            ScalarExpr::var("l").get(0).eq(ScalarExpr::var("e").get(0)),
        );
        let e = ScalarExpr::Fold(
            Box::new(crate::bag_expr::BagExpr::Ref { name: "bl".into() }),
            Box::new(FoldOp::exists(pred)),
        );
        let fv = e.free_vars();
        assert!(fv.contains("e"));
        assert!(fv.contains("bl"));
        assert!(!fv.contains("l"));
    }
}
