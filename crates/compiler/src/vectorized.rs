//! Vectorized batch evaluation: typed columnar kernels for compiled slot
//! programs.
//!
//! The scalar compiled tier ([`crate::compiled`]) removed name resolution
//! from the per-row hot path, but every row still flows through the `Value`
//! enum one at a time: each opcode pays enum dispatch, a stack push/pop, and
//! — for `Arc`-backed rows — refcount traffic. This module adds the third
//! tier: a **static type-inference pass** over a compiled slot program (or a
//! fused chain of them) classifies every opcode as specializable over typed
//! `i64`/`f64`/`bool`/string columns or not, and fully-specializable programs
//! are re-lowered into a flat array of **column kernels** executed over
//! reusable scratch buffers in batches of [`BatchConfig::batch_rows`] rows.
//!
//! Design points:
//!
//! - **Specialization is all-or-nothing per program.** [`specialize`]
//!   returns `None` the moment any opcode resists typing (vector ops,
//!   nested folds, bag construction, an unbound capture, a static type
//!   that would make the reference semantics error on every row); the
//!   caller falls back to the scalar `Machine` for that operator and
//!   reports it (`ExecStats::vector_fallbacks`) — no silent slow paths.
//! - **String columns are offset+bytes arenas.** A `Str`-typed slot loads
//!   into one shared byte buffer plus per-lane `(start, len)` ranges
//!   ([`StrCol`]); `str_len`, `str_contains`, string equality/comparison,
//!   and string `hash_of` run as byte-slice kernels over those ranges.
//!   When the driver-side sample shows low cardinality
//!   ([`specialize_sampled`]) the load additionally dictionary-encodes the
//!   column so hash/contains kernels compute once per *distinct* value. A
//!   batch whose strings would outgrow the arena's `u32` offsets aborts to
//!   the scalar tier like any other non-conforming batch.
//! - **Branch-free `If` via selection vectors.** `JumpIfFalse`/`Jump` pairs
//!   are recovered into structured branches; each branch's kernels execute
//!   only over the lanes selected for it, so an error (or a debug-mode
//!   overflow panic) in a branch a lane does not take can never fire for
//!   that lane — exactly the reference interpreter's taken-branch-only
//!   evaluation, batched.
//! - **Fused filters narrow the selection.** A pipeline's `Filter` stages
//!   never materialize intermediates; they shrink the active selection that
//!   all downstream kernels (and the final row materialization) iterate
//!   over. Per-stage entry counts — the engine's cost-model inputs — are
//!   the selection sizes at each stage boundary, bit-identical to the
//!   scalar pass.
//! - **Error semantics are preserved exactly, by replay.** Column-at-a-time
//!   execution evaluates op `k` for every row before op `k+1` for any row,
//!   which reorders *errors across rows*. So kernels never report which
//!   lane failed: any failing lane (division/modulo by zero on a selected
//!   lane) aborts the batch, [`VectorPipeline::run_batch`] returns `false`
//!   without touching its outputs, and the caller re-runs that batch
//!   row-at-a-time through the scalar tier — reproducing the *first* error
//!   in evaluation order bit-identically. A batch whose rows do not all
//!   conform to the specialized input shape takes the same path.
//!
//! The scalar compiled tier and the reference interpreter stay the
//! executable specification; the differential suite in `tests/` proves the
//! three tiers agree on arbitrary expression trees — values *and* errors.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use crate::compiled::{CompiledEval, Op};
use crate::expr::{BinOp, BuiltinFn, UnOp};
use crate::value::Value;

// ------------------------------------------------------------------- config

/// Knobs for the vectorized batch-evaluation tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Rows per batch: the unit over which kernel dispatch is amortized and
    /// the granularity of scalar error replay.
    pub batch_rows: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { batch_rows: 1024 }
    }
}

impl BatchConfig {
    /// A config with the given batch size (clamped to at least 1).
    pub fn new(batch_rows: usize) -> Self {
        BatchConfig {
            batch_rows: batch_rows.max(1),
        }
    }
}

// ------------------------------------------------------------------- shapes

/// The statically inferred layout of one input-row component.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Shape {
    I64,
    F64,
    Bool,
    /// A string slot: loads into an offset+bytes arena column.
    Str,
    /// A type the kernels cannot compute on (Null, Vector, Bag): loadable
    /// only as an opaque pass-through `Value` column.
    Other,
    Tuple(Vec<Shape>),
}

fn shape_of(v: &Value) -> Shape {
    match v {
        Value::Int(_) => Shape::I64,
        Value::Float(_) => Shape::F64,
        Value::Bool(_) => Shape::Bool,
        Value::Str(_) => Shape::Str,
        Value::Tuple(fs) => Shape::Tuple(fs.iter().map(shape_of).collect()),
        _ => Shape::Other,
    }
}

/// Navigates a field path into a row.
fn path_get<'v>(row: &'v Value, path: &[usize]) -> Option<&'v Value> {
    let mut cur = row;
    for &i in path {
        cur = match cur {
            Value::Tuple(fs) => fs.get(i)?,
            _ => return None,
        };
    }
    Some(cur)
}

// ------------------------------------------------------------ kernel program

type Reg = usize;
type SelId = usize;

/// One column kernel. Loads and splats cover the whole batch (loads double
/// as the per-batch shape check); compute kernels touch only the lanes of
/// their selection vector, so errors and debug-overflow panics fire exactly
/// for the lanes the scalar semantics would evaluate.
#[derive(Clone, Debug)]
enum VInstr {
    LoadI {
        dst: Reg,
        path: Vec<usize>,
    },
    LoadF {
        dst: Reg,
        path: Vec<usize>,
    },
    LoadB {
        dst: Reg,
        path: Vec<usize>,
    },
    LoadV {
        dst: Reg,
        path: Vec<usize>,
    },
    SplatI {
        dst: Reg,
        v: i64,
    },
    SplatF {
        dst: Reg,
        v: f64,
    },
    SplatB {
        dst: Reg,
        v: bool,
    },
    SplatV {
        dst: Reg,
        v: Value,
    },
    /// Wrapping integer Add/Sub/Mul (the interpreter's `wrapping_*`).
    ArithI {
        sel: SelId,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    ArithF {
        sel: SelId,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Float division; a selected lane with divisor `0.0` aborts the batch.
    DivF {
        sel: SelId,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Euclidean remainder; a selected lane with modulus 0 aborts the batch.
    ModI {
        sel: SelId,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// The `as_float` Int→Float coercion.
    CastF {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    NegI {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    NegF {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    NotB {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    AbsI {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    AbsF {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    SqrtF {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    MinMaxI {
        sel: SelId,
        min: bool,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Float min/max via `total_cmp`, matching `Value`'s total order.
    MinMaxF {
        sel: SelId,
        min: bool,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `HashOf` over a typed column — hashes the equivalent `Value`, so the
    /// result is bit-identical to the interpreter's.
    HashI {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    HashF {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    HashB {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    CmpI {
        sel: SelId,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Float comparison: Eq/Ne via `Value`'s `float_key` equality (NaNs
    /// equal, ±0 equal), ordering via `total_cmp`.
    CmpF {
        sel: SelId,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    CmpB {
        sel: SelId,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Strict And (`and: true`) / Or over bool columns.
    BoolB {
        sel: SelId,
        and: bool,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Structured `If`: split the parent selection by a condition column
    /// into the lanes taking each branch.
    SelSplit {
        parent: SelId,
        cond: Reg,
        then_sel: SelId,
        else_sel: SelId,
    },
    /// Merge the two branch results of an `If` back into one column.
    MergeI {
        dst: Reg,
        ts: SelId,
        t: Reg,
        es: SelId,
        e: Reg,
    },
    MergeF {
        dst: Reg,
        ts: SelId,
        t: Reg,
        es: SelId,
        e: Reg,
    },
    MergeB {
        dst: Reg,
        ts: SelId,
        t: Reg,
        es: SelId,
        e: Reg,
    },
    MergeV {
        dst: Reg,
        ts: SelId,
        t: Reg,
        es: SelId,
        e: Reg,
    },
    /// End of a fused `Filter` stage: keep the lanes whose predicate holds.
    FilterApply {
        parent: SelId,
        pred: Reg,
        dst: SelId,
    },
    /// Loads a `Str` component into an offset+bytes arena column. `dict`
    /// additionally dictionary-encodes it — decided at specialization time
    /// from the driver-side sample, so the decision replays across runs.
    LoadS {
        dst: Reg,
        path: Vec<usize>,
        dict: bool,
    },
    /// Broadcasts one string into every lane (single dictionary entry).
    SplatS {
        dst: Reg,
        v: Arc<str>,
    },
    /// `str_len`: the byte length, exactly the interpreter's `len() as i64`.
    StrLenS {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    /// `str_contains(a, b)`: byte-level substring search, equivalent to
    /// `str::contains` on valid UTF-8. A dictionary-encoded haystack with a
    /// uniform needle searches once per distinct value.
    StrContainsS {
        sel: SelId,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// String comparison: `Value::Str` equality is content equality and its
    /// order is bytewise `str::cmp`, so both are byte-slice comparisons.
    CmpS {
        sel: SelId,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `HashOf` over a string column, bit-identical to hashing the
    /// equivalent `Value::Str`; dictionary-encoded columns hash once per
    /// distinct value.
    HashS {
        sel: SelId,
        dst: Reg,
        a: Reg,
    },
    MergeS {
        dst: Reg,
        ts: SelId,
        t: Reg,
        es: SelId,
        e: Reg,
    },
}

/// A typed column reference on the abstract stack during specialization.
#[derive(Clone, Debug)]
enum VVal {
    I(Reg),
    F(Reg),
    B(Reg),
    S(Reg),
    V(Reg),
    Tup(Vec<VVal>),
    /// A not-yet-loaded input component; loads are emitted lazily on first
    /// use (and memoized), so untouched fields cost nothing per batch.
    Arg {
        path: Vec<usize>,
        shape: Shape,
    },
}

/// A resolved (register-backed) column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TR {
    I(Reg),
    F(Reg),
    B(Reg),
    S(Reg),
    V(Reg),
}

fn tr_val(tr: TR) -> VVal {
    match tr {
        TR::I(r) => VVal::I(r),
        TR::F(r) => VVal::F(r),
        TR::B(r) => VVal::B(r),
        TR::S(r) => VVal::S(r),
        TR::V(r) => VVal::V(r),
    }
}

/// Recipe for materializing output rows from columns.
#[derive(Clone, Debug)]
enum MatNode {
    I(Reg),
    F(Reg),
    B(Reg),
    S(Reg),
    V(Reg),
    Tup(Vec<MatNode>),
}

#[derive(Clone, Debug)]
enum OutSpec {
    /// Build each output row from columns (the chain contains a Map).
    Rows(MatNode),
    /// Filter-only chain: output is the surviving input rows, cloned —
    /// exactly what the scalar filter pushes (`Arc` sharing preserved).
    PassThrough,
}

/// One stage of a vectorizable chain, borrowed from the engine's prepared
/// operators: the compiled slot program plus its bound capture slots.
pub enum VecStageSpec<'a> {
    /// A Map-like stage (also a fold's per-element `sng` function).
    Map(&'a CompiledEval, &'a [Option<Value>]),
    /// A Filter stage; its program must statically produce `Bool`.
    Filter(&'a CompiledEval, &'a [Option<Value>]),
}

/// A batch-local string column: one shared byte arena plus per-lane
/// `(start, len)` ranges — the offset+bytes layout of columnar engines.
///
/// When the load was dictionary-encoded (low sample cardinality), `dict`
/// holds each distinct string's arena range in first-appearance order and
/// `codes` maps lanes to dictionary entries, letting per-distinct kernels
/// (hash, contains-with-uniform-needle) compute once per distinct value.
/// The per-lane ranges stay valid either way, so every kernel can always
/// take the generic per-lane path.
#[derive(Clone, Debug, Default)]
struct StrCol {
    bytes: Vec<u8>,
    starts: Vec<u32>,
    lens: Vec<u32>,
    /// Per-lane dictionary codes; empty when the column is not encoded.
    codes: Vec<u32>,
    /// Per-code `(start, len)` into `bytes`; empty when not encoded.
    dict: Vec<(u32, u32)>,
}

impl StrCol {
    fn clear(&mut self) {
        self.bytes.clear();
        self.starts.clear();
        self.lens.clear();
        self.codes.clear();
        self.dict.clear();
    }

    /// The byte slice of lane `l`.
    fn lane(&self, l: usize) -> &[u8] {
        let s = self.starts[l] as usize;
        &self.bytes[s..s + self.lens[l] as usize]
    }

    /// The byte slice of dictionary entry `c`.
    fn dict_entry(&self, c: usize) -> &[u8] {
        let (s, len) = self.dict[c];
        &self.bytes[s as usize..(s + len) as usize]
    }

    /// Appends `b` to the arena, returning its range — `None` when the
    /// arena would outgrow the `u32` offset width (the caller aborts the
    /// batch and the scalar tier replays it).
    fn push_bytes(&mut self, b: &[u8]) -> Option<(u32, u32)> {
        let start = self.bytes.len();
        if start + b.len() > u32::MAX as usize {
            return None;
        }
        self.bytes.extend_from_slice(b);
        Some((start as u32, b.len() as u32))
    }
}

/// A fully-specialized columnar program for one operator (or one fused
/// Map/Filter chain). Immutable and shareable across worker threads; each
/// task evaluates it with its own [`VectorScratch`].
#[derive(Clone, Debug)]
pub struct VectorPipeline {
    instrs: Vec<VInstr>,
    n_i: usize,
    n_f: usize,
    n_b: usize,
    n_s: usize,
    n_v: usize,
    n_sels: usize,
    /// Selection active at each stage's entry (drives the engine's
    /// per-stage row counts).
    stage_sels: Vec<SelId>,
    out_sel: SelId,
    out: OutSpec,
}

/// Reusable per-task columnar scratch: typed register files plus selection
/// vectors, grown once and reused across every batch a task evaluates.
#[derive(Debug)]
pub struct VectorScratch {
    i: Vec<Vec<i64>>,
    f: Vec<Vec<f64>>,
    b: Vec<Vec<bool>>,
    s: Vec<StrCol>,
    v: Vec<Vec<Value>>,
    sels: Vec<Vec<u32>>,
}

// ----------------------------------------------------------- type inference

/// Statically types a chain of compiled slot programs against a sample
/// input row, lowering every opcode to column kernels. Returns `None` as
/// soon as any opcode is not specializable; the chain is then evaluated by
/// the scalar tier (which is always correct) and reported as a fallback.
///
/// Purely a function of the programs, their bound captures, and the sample
/// row's *shape* — so given deterministic data, specialization decisions
/// replay identically across runs, thread counts, and dispatch modes.
pub fn specialize(stages: &[VecStageSpec<'_>], sample: &Value) -> Option<VectorPipeline> {
    specialize_sampled(stages, std::slice::from_ref(sample))
}

/// [`specialize`] with a multi-row driver-side sample. The first row
/// defines the input shape exactly as before; the remaining rows only
/// inform *encoding* decisions — a `Str` slot whose sampled values are
/// low-cardinality ([`StrCol`]'s dictionary heuristic: at least
/// [`DICT_MIN_SAMPLE`] conforming samples with at most half as many
/// distinct values) loads dictionary-encoded. Still a pure function of the
/// programs, captures, and sample, so decisions replay deterministically.
pub fn specialize_sampled(
    stages: &[VecStageSpec<'_>],
    samples: &[Value],
) -> Option<VectorPipeline> {
    let sample = samples.first()?;
    let mut b = Builder::new(samples);
    let mut cur = VVal::Arg {
        path: Vec::new(),
        shape: shape_of(sample),
    };
    let mut sel: SelId = 0;
    let mut stage_sels = Vec::with_capacity(stages.len());
    let mut any_map = false;
    for spec in stages {
        stage_sels.push(sel);
        match spec {
            VecStageSpec::Map(code, caps) => {
                if code.arity != 1 {
                    return None;
                }
                cur = b.eval_code(&code.code.ops, caps, &cur, sel)?;
                any_map = true;
            }
            VecStageSpec::Filter(code, caps) => {
                if code.arity != 1 {
                    return None;
                }
                let p = b.eval_code(&code.code.ops, caps, &cur, sel)?;
                // The scalar filter applies `as_bool` to the result; a
                // non-Bool static type errors on every row — let the
                // scalar tier produce that error.
                let pred = match b.resolve(p)? {
                    TR::B(r) => r,
                    _ => return None,
                };
                let dst = b.new_sel();
                b.instrs.push(VInstr::FilterApply {
                    parent: sel,
                    pred,
                    dst,
                });
                sel = dst;
            }
        }
    }
    let out = if any_map {
        OutSpec::Rows(b.mat_node(cur)?)
    } else {
        OutSpec::PassThrough
    };
    Some(VectorPipeline {
        instrs: b.instrs,
        n_i: b.n_i,
        n_f: b.n_f,
        n_b: b.n_b,
        n_s: b.n_s,
        n_v: b.n_v,
        n_sels: b.n_sels,
        stage_sels,
        out_sel: sel,
        out,
    })
}

/// Minimum conforming sample rows before the dictionary heuristic may
/// fire — a dictionary decided from a couple of rows is noise.
pub const DICT_MIN_SAMPLE: usize = 8;

struct Builder<'s> {
    /// The driver-side sample rows (shape from the first, encoding
    /// decisions from all of them).
    samples: &'s [Value],
    instrs: Vec<VInstr>,
    n_i: usize,
    n_f: usize,
    n_b: usize,
    n_s: usize,
    n_v: usize,
    n_sels: usize,
    /// Selection the currently-lowered expression evaluates under (branch
    /// bodies narrow it); every compute kernel is tagged with it.
    cur_sel: SelId,
    /// Loads memoized by field path, so a component is loaded (and shape-
    /// checked) once per batch however often the programs reference it.
    loads: HashMap<Vec<usize>, TR>,
}

impl<'s> Builder<'s> {
    fn new(samples: &'s [Value]) -> Self {
        Builder {
            samples,
            instrs: Vec::new(),
            n_i: 0,
            n_f: 0,
            n_b: 0,
            n_s: 0,
            n_v: 0,
            n_sels: 1, // sel 0 = the full batch
            cur_sel: 0,
            loads: HashMap::new(),
        }
    }

    /// Low-cardinality check for a `Str` slot: dictionary-encode when at
    /// least [`DICT_MIN_SAMPLE`] sampled rows conform and at most half of
    /// them are distinct. Non-conforming sample rows are simply skipped —
    /// conformance is enforced per batch by the load itself.
    fn dict_for_path(&self, path: &[usize]) -> bool {
        let mut seen: Vec<&str> = Vec::new();
        let mut total = 0usize;
        for row in self.samples {
            if let Some(Value::Str(st)) = path_get(row, path) {
                total += 1;
                let st: &str = st;
                if !seen.contains(&st) {
                    seen.push(st);
                }
            }
        }
        total >= DICT_MIN_SAMPLE && seen.len() * 2 <= total
    }

    fn new_i(&mut self) -> Reg {
        self.n_i += 1;
        self.n_i - 1
    }
    fn new_f(&mut self) -> Reg {
        self.n_f += 1;
        self.n_f - 1
    }
    fn new_b(&mut self) -> Reg {
        self.n_b += 1;
        self.n_b - 1
    }
    fn new_s(&mut self) -> Reg {
        self.n_s += 1;
        self.n_s - 1
    }
    fn new_v(&mut self) -> Reg {
        self.n_v += 1;
        self.n_v - 1
    }
    fn new_sel(&mut self) -> SelId {
        self.n_sels += 1;
        self.n_sels - 1
    }

    /// Abstractly evaluates a compiled program; `None` = not specializable.
    fn eval_code(
        &mut self,
        ops: &[Op],
        caps: &[Option<Value>],
        input: &VVal,
        sel: SelId,
    ) -> Option<VVal> {
        self.eval_range(ops, 0..ops.len(), caps, input, sel)
    }

    fn eval_range(
        &mut self,
        ops: &[Op],
        range: Range<usize>,
        caps: &[Option<Value>],
        input: &VVal,
        sel: SelId,
    ) -> Option<VVal> {
        self.cur_sel = sel;
        let mut stack: Vec<VVal> = Vec::new();
        let mut pc = range.start;
        while pc < range.end {
            match &ops[pc] {
                Op::Const(v) => stack.push(self.splat(v)?),
                // A statically failing program errors on every row it
                // evaluates — the scalar fallback reproduces it per row.
                Op::Fail(_) => return None,
                Op::Local(slot) => {
                    if *slot != 0 {
                        return None;
                    }
                    stack.push(input.clone());
                }
                Op::Capture(c) => match &caps[*c] {
                    Some(v) => stack.push(self.splat(v)?),
                    // An unbound capture errors whenever read; fall back.
                    None => return None,
                },
                Op::Field(i) => {
                    let v = stack.pop()?;
                    stack.push(self.field(v, *i)?);
                }
                Op::Bin(op) => {
                    let r = stack.pop()?;
                    let l = stack.pop()?;
                    stack.push(self.bin(*op, l, r)?);
                }
                Op::Un(op) => {
                    let a = stack.pop()?;
                    stack.push(self.un(*op, a)?);
                }
                Op::Call(f, n) => {
                    let at = stack.len().checked_sub(*n)?;
                    let args: Vec<VVal> = stack.drain(at..).collect();
                    stack.push(self.call(*f, args)?);
                }
                Op::Tuple(n) => {
                    let at = stack.len().checked_sub(*n)?;
                    let fs: Vec<VVal> = stack.drain(at..).collect();
                    stack.push(VVal::Tup(fs));
                }
                Op::JumpIfFalse(else_at) => {
                    // Recover the structured `If` the compiler emitted:
                    // [cond] JumpIfFalse(e) [then] Jump(end) [else@e..end].
                    let else_at = *else_at;
                    if else_at < pc + 2 || else_at > range.end {
                        return None;
                    }
                    let end = match &ops[else_at - 1] {
                        Op::Jump(end) if *end >= else_at && *end <= range.end => *end,
                        _ => return None,
                    };
                    let cond = match self.resolve(stack.pop()?)? {
                        TR::B(r) => r,
                        // Non-Bool condition: `as_bool` errors per row.
                        _ => return None,
                    };
                    let then_sel = self.new_sel();
                    let else_sel = self.new_sel();
                    self.instrs.push(VInstr::SelSplit {
                        parent: sel,
                        cond,
                        then_sel,
                        else_sel,
                    });
                    // Each branch's kernels run only over its own lanes, so
                    // an error in the untaken branch of a lane cannot fire.
                    let t = self.eval_range(ops, pc + 1..else_at - 1, caps, input, then_sel)?;
                    let e = self.eval_range(ops, else_at..end, caps, input, else_sel)?;
                    self.cur_sel = sel;
                    stack.push(self.merge(t, e, then_sel, else_sel)?);
                    pc = end;
                    continue;
                }
                // Bare jumps only occur inside an `If` (consumed above).
                Op::Jump(_) => return None,
                // Nested folds and bag construction stay scalar.
                Op::Fold(_) | Op::MkBag(_) => return None,
            }
            pc += 1;
        }
        if stack.len() == 1 {
            stack.pop()
        } else {
            None
        }
    }

    /// Broadcasts a constant (folded literal or bound capture) into columns.
    fn splat(&mut self, v: &Value) -> Option<VVal> {
        Some(match v {
            Value::Int(i) => {
                let dst = self.new_i();
                self.instrs.push(VInstr::SplatI { dst, v: *i });
                VVal::I(dst)
            }
            Value::Float(f) => {
                let dst = self.new_f();
                self.instrs.push(VInstr::SplatF { dst, v: *f });
                VVal::F(dst)
            }
            Value::Bool(b) => {
                let dst = self.new_b();
                self.instrs.push(VInstr::SplatB { dst, v: *b });
                VVal::B(dst)
            }
            Value::Str(st) => {
                let dst = self.new_s();
                self.instrs.push(VInstr::SplatS { dst, v: st.clone() });
                VVal::S(dst)
            }
            Value::Tuple(fs) => {
                let mut parts = Vec::with_capacity(fs.len());
                for f in fs.iter() {
                    parts.push(self.splat(f)?);
                }
                VVal::Tup(parts)
            }
            // Opaque pass-through (Null, Vector, Bag): usable only in
            // output tuples, never as a kernel operand.
            other => {
                let dst = self.new_v();
                self.instrs.push(VInstr::SplatV {
                    dst,
                    v: other.clone(),
                });
                VVal::V(dst)
            }
        })
    }

    fn field(&mut self, v: VVal, i: usize) -> Option<VVal> {
        match v {
            VVal::Tup(mut fs) => {
                if i < fs.len() {
                    Some(fs.swap_remove(i))
                } else {
                    None // out of range: errors per row; scalar reproduces
                }
            }
            VVal::Arg { path, shape } => match shape {
                Shape::Tuple(mut fs) if i < fs.len() => {
                    let mut p = path;
                    p.push(i);
                    Some(VVal::Arg {
                        path: p,
                        shape: fs.swap_remove(i),
                    })
                }
                _ => None,
            },
            // Field access on a non-tuple errors per row.
            _ => None,
        }
    }

    /// Resolves an abstract value to a concrete column register, emitting a
    /// (memoized) load for input components. Whole-tuple values have no
    /// single register — callers that need one reject instead.
    fn resolve(&mut self, v: VVal) -> Option<TR> {
        match v {
            VVal::I(r) => Some(TR::I(r)),
            VVal::F(r) => Some(TR::F(r)),
            VVal::B(r) => Some(TR::B(r)),
            VVal::S(r) => Some(TR::S(r)),
            VVal::V(r) => Some(TR::V(r)),
            VVal::Tup(_) => None,
            VVal::Arg { path, shape } => {
                if let Some(tr) = self.loads.get(&path) {
                    return Some(*tr);
                }
                let tr = match shape {
                    Shape::I64 => {
                        let dst = self.new_i();
                        self.instrs.push(VInstr::LoadI {
                            dst,
                            path: path.clone(),
                        });
                        TR::I(dst)
                    }
                    Shape::F64 => {
                        let dst = self.new_f();
                        self.instrs.push(VInstr::LoadF {
                            dst,
                            path: path.clone(),
                        });
                        TR::F(dst)
                    }
                    Shape::Bool => {
                        let dst = self.new_b();
                        self.instrs.push(VInstr::LoadB {
                            dst,
                            path: path.clone(),
                        });
                        TR::B(dst)
                    }
                    Shape::Str => {
                        let dict = self.dict_for_path(&path);
                        let dst = self.new_s();
                        self.instrs.push(VInstr::LoadS {
                            dst,
                            path: path.clone(),
                            dict,
                        });
                        TR::S(dst)
                    }
                    Shape::Other => {
                        let dst = self.new_v();
                        self.instrs.push(VInstr::LoadV {
                            dst,
                            path: path.clone(),
                        });
                        TR::V(dst)
                    }
                    Shape::Tuple(_) => return None,
                };
                self.loads.insert(path, tr);
                Some(tr)
            }
        }
    }

    /// Resolves to a float column, coercing Int→Float where the scalar
    /// semantics would (`as_float`).
    fn resolve_f(&mut self, v: VVal) -> Option<Reg> {
        match self.resolve(v)? {
            TR::F(r) => Some(r),
            TR::I(r) => {
                let dst = self.new_f();
                self.instrs.push(VInstr::CastF {
                    sel: self.cur_sel,
                    dst,
                    a: r,
                });
                Some(dst)
            }
            _ => None,
        }
    }

    fn bin(&mut self, op: BinOp, l: VVal, r: VVal) -> Option<VVal> {
        use BinOp::*;
        let sel = self.cur_sel;
        match op {
            Add | Sub | Mul => {
                let (lt, rt) = (self.resolve(l)?, self.resolve(r)?);
                match (lt, rt) {
                    (TR::I(a), TR::I(b)) => {
                        let dst = self.new_i();
                        self.instrs.push(VInstr::ArithI { sel, op, dst, a, b });
                        Some(VVal::I(dst))
                    }
                    (TR::I(_) | TR::F(_), TR::I(_) | TR::F(_)) => {
                        let a = self.resolve_f(tr_val(lt))?;
                        let b = self.resolve_f(tr_val(rt))?;
                        let dst = self.new_f();
                        self.instrs.push(VInstr::ArithF { sel, op, dst, a, b });
                        Some(VVal::F(dst))
                    }
                    // Vector arithmetic, strings, etc. stay scalar.
                    _ => None,
                }
            }
            Div => {
                // Vector/scalar division stays scalar: resolve_f rejects
                // non-numeric columns.
                let a = self.resolve_f(l)?;
                let b = self.resolve_f(r)?;
                let dst = self.new_f();
                self.instrs.push(VInstr::DivF { sel, dst, a, b });
                Some(VVal::F(dst))
            }
            Mod => match (self.resolve(l)?, self.resolve(r)?) {
                (TR::I(a), TR::I(b)) => {
                    let dst = self.new_i();
                    self.instrs.push(VInstr::ModI { sel, dst, a, b });
                    Some(VVal::I(dst))
                }
                // `Mod` is strict on Int (`as_int`): anything else errors.
                _ => None,
            },
            Eq | Ne | Lt | Le | Gt | Ge => {
                let (lt, rt) = (self.resolve(l)?, self.resolve(r)?);
                match (lt, rt) {
                    (TR::I(a), TR::I(b)) => {
                        let dst = self.new_b();
                        self.instrs.push(VInstr::CmpI { sel, op, dst, a, b });
                        Some(VVal::B(dst))
                    }
                    (TR::I(_) | TR::F(_), TR::I(_) | TR::F(_)) => {
                        // Mixed Int/Float comparison coerces through f64,
                        // matching `Value`'s cross-type order.
                        let a = self.resolve_f(tr_val(lt))?;
                        let b = self.resolve_f(tr_val(rt))?;
                        let dst = self.new_b();
                        self.instrs.push(VInstr::CmpF { sel, op, dst, a, b });
                        Some(VVal::B(dst))
                    }
                    (TR::B(a), TR::B(b)) => {
                        let dst = self.new_b();
                        self.instrs.push(VInstr::CmpB { sel, op, dst, a, b });
                        Some(VVal::B(dst))
                    }
                    (TR::S(a), TR::S(b)) => {
                        let dst = self.new_b();
                        self.instrs.push(VInstr::CmpS { sel, op, dst, a, b });
                        Some(VVal::B(dst))
                    }
                    // Cross-rank comparisons (and tuple equality) stay
                    // scalar.
                    _ => None,
                }
            }
            And | Or => match (self.resolve(l)?, self.resolve(r)?) {
                (TR::B(a), TR::B(b)) => {
                    let dst = self.new_b();
                    self.instrs.push(VInstr::BoolB {
                        sel,
                        and: matches!(op, And),
                        dst,
                        a,
                        b,
                    });
                    Some(VVal::B(dst))
                }
                _ => None,
            },
        }
    }

    fn un(&mut self, op: UnOp, a: VVal) -> Option<VVal> {
        let sel = self.cur_sel;
        match (op, self.resolve(a)?) {
            (UnOp::Not, TR::B(a)) => {
                let dst = self.new_b();
                self.instrs.push(VInstr::NotB { sel, dst, a });
                Some(VVal::B(dst))
            }
            (UnOp::Neg, TR::I(a)) => {
                let dst = self.new_i();
                self.instrs.push(VInstr::NegI { sel, dst, a });
                Some(VVal::I(dst))
            }
            (UnOp::Neg, TR::F(a)) => {
                let dst = self.new_f();
                self.instrs.push(VInstr::NegF { sel, dst, a });
                Some(VVal::F(dst))
            }
            _ => None,
        }
    }

    fn call(&mut self, f: BuiltinFn, mut args: Vec<VVal>) -> Option<VVal> {
        let sel = self.cur_sel;
        match f {
            BuiltinFn::Sqrt => {
                let a = self.resolve_f(args.pop()?)?;
                let dst = self.new_f();
                self.instrs.push(VInstr::SqrtF { sel, dst, a });
                Some(VVal::F(dst))
            }
            BuiltinFn::Abs => match self.resolve(args.pop()?)? {
                TR::I(a) => {
                    let dst = self.new_i();
                    self.instrs.push(VInstr::AbsI { sel, dst, a });
                    Some(VVal::I(dst))
                }
                TR::F(a) => {
                    let dst = self.new_f();
                    self.instrs.push(VInstr::AbsF { sel, dst, a });
                    Some(VVal::F(dst))
                }
                _ => None,
            },
            BuiltinFn::MinOf | BuiltinFn::MaxOf => {
                let r = args.pop()?;
                let l = args.pop()?;
                let min = matches!(f, BuiltinFn::MinOf);
                match (self.resolve(l)?, self.resolve(r)?) {
                    (TR::I(a), TR::I(b)) => {
                        let dst = self.new_i();
                        self.instrs.push(VInstr::MinMaxI {
                            sel,
                            min,
                            dst,
                            a,
                            b,
                        });
                        Some(VVal::I(dst))
                    }
                    (TR::F(a), TR::F(b)) => {
                        let dst = self.new_f();
                        self.instrs.push(VInstr::MinMaxF {
                            sel,
                            min,
                            dst,
                            a,
                            b,
                        });
                        Some(VVal::F(dst))
                    }
                    // Mixed Int/Float min/max picks one operand verbatim —
                    // a mixed-type output column; Null-as-unit likewise.
                    _ => None,
                }
            }
            BuiltinFn::HashOf => {
                let dst = self.new_i();
                match self.resolve(args.pop()?)? {
                    TR::I(a) => self.instrs.push(VInstr::HashI { sel, dst, a }),
                    TR::F(a) => self.instrs.push(VInstr::HashF { sel, dst, a }),
                    TR::B(a) => self.instrs.push(VInstr::HashB { sel, dst, a }),
                    TR::S(a) => self.instrs.push(VInstr::HashS { sel, dst, a }),
                    _ => return None,
                }
                Some(VVal::I(dst))
            }
            BuiltinFn::StrLen => match self.resolve(args.pop()?)? {
                TR::S(a) => {
                    let dst = self.new_i();
                    self.instrs.push(VInstr::StrLenS { sel, dst, a });
                    Some(VVal::I(dst))
                }
                // `str_len` on a non-string errors per row (`as_str`).
                _ => None,
            },
            BuiltinFn::StrContains => {
                let needle = args.pop()?;
                let hay = args.pop()?;
                match (self.resolve(hay)?, self.resolve(needle)?) {
                    (TR::S(a), TR::S(b)) => {
                        let dst = self.new_b();
                        self.instrs.push(VInstr::StrContainsS { sel, dst, a, b });
                        Some(VVal::B(dst))
                    }
                    // Non-string operands error per row (`as_str`).
                    _ => None,
                }
            }
            // Vector builtins stay scalar.
            _ => None,
        }
    }

    /// Merges two branch results into one column per leaf.
    fn merge(&mut self, t: VVal, e: VVal, ts: SelId, es: SelId) -> Option<VVal> {
        match (t, e) {
            (VVal::Tup(tf), VVal::Tup(ef)) if tf.len() == ef.len() => {
                let mut out = Vec::with_capacity(tf.len());
                for (a, b) in tf.into_iter().zip(ef) {
                    out.push(self.merge(a, b, ts, es)?);
                }
                Some(VVal::Tup(out))
            }
            (t, e) => {
                let (tr, er) = (self.resolve(t)?, self.resolve(e)?);
                if tr == er {
                    // Both branches yield the same column (e.g. the same
                    // input field): no merge needed.
                    return Some(tr_val(tr));
                }
                match (tr, er) {
                    (TR::I(t), TR::I(e)) => {
                        let dst = self.new_i();
                        self.instrs.push(VInstr::MergeI { dst, ts, t, es, e });
                        Some(VVal::I(dst))
                    }
                    (TR::F(t), TR::F(e)) => {
                        let dst = self.new_f();
                        self.instrs.push(VInstr::MergeF { dst, ts, t, es, e });
                        Some(VVal::F(dst))
                    }
                    (TR::B(t), TR::B(e)) => {
                        let dst = self.new_b();
                        self.instrs.push(VInstr::MergeB { dst, ts, t, es, e });
                        Some(VVal::B(dst))
                    }
                    (TR::S(t), TR::S(e)) => {
                        let dst = self.new_s();
                        self.instrs.push(VInstr::MergeS { dst, ts, t, es, e });
                        Some(VVal::S(dst))
                    }
                    (TR::V(t), TR::V(e)) => {
                        let dst = self.new_v();
                        self.instrs.push(VInstr::MergeV { dst, ts, t, es, e });
                        Some(VVal::V(dst))
                    }
                    // Branches of different static types would produce a
                    // mixed-type column.
                    _ => None,
                }
            }
        }
    }

    /// Output-row materialization recipe for the final abstract value.
    fn mat_node(&mut self, v: VVal) -> Option<MatNode> {
        match v {
            VVal::Tup(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for f in fs {
                    out.push(self.mat_node(f)?);
                }
                Some(MatNode::Tup(out))
            }
            VVal::Arg {
                path,
                shape: Shape::Tuple(fs),
            } => {
                let mut out = Vec::with_capacity(fs.len());
                for (i, fshape) in fs.into_iter().enumerate() {
                    let mut p = path.clone();
                    p.push(i);
                    out.push(self.mat_node(VVal::Arg {
                        path: p,
                        shape: fshape,
                    })?);
                }
                Some(MatNode::Tup(out))
            }
            v => Some(match self.resolve(v)? {
                TR::I(r) => MatNode::I(r),
                TR::F(r) => MatNode::F(r),
                TR::B(r) => MatNode::B(r),
                TR::S(r) => MatNode::S(r),
                TR::V(r) => MatNode::V(r),
            }),
        }
    }
}

// ---------------------------------------------------------------- execution

fn hash_value(v: &Value) -> i64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    (h.finish() & 0x7fff_ffff_ffff_ffff) as i64
}

/// `HashOf` over a string's bytes without materializing a `Value`: replays
/// `Value::Str`'s `Hash` impl byte-for-byte (the `3u8` discriminant, then
/// `str::hash` = the bytes plus a `0xff` terminator), so results are
/// bit-identical to the interpreter's. Pinned against [`hash_value`] by
/// `string_hash_kernel_matches_value_hash`.
fn hash_str_bytes(bytes: &[u8]) -> i64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write_u8(3);
    h.write(bytes);
    h.write_u8(0xff);
    (h.finish() & 0x7fff_ffff_ffff_ffff) as i64
}

/// Byte-level substring search, equivalent to `str::contains` for valid
/// UTF-8 (a byte-level match cannot straddle a char boundary in
/// well-formed input).
fn contains_bytes(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > hay.len() {
        return false;
    }
    let first = needle[0];
    for i in 0..=(hay.len() - needle.len()) {
        if hay[i] == first && hay[i..i + needle.len()] == *needle {
            return true;
        }
    }
    false
}

fn cmp_holds(op: BinOp, o: Ordering) -> bool {
    match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Ne => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::Le => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::Ge => o != Ordering::Less,
        _ => unreachable!("comparison kernels carry comparison ops"),
    }
}

fn ensure<T: Copy + Default>(col: &mut Vec<T>, n: usize) {
    if col.len() < n {
        col.resize(n, T::default());
    }
}

fn ensure_v(col: &mut Vec<Value>, n: usize) {
    if col.len() < n {
        col.resize(n, Value::Null);
    }
}

impl VectorPipeline {
    /// Number of fused stages this program covers.
    pub fn n_stages(&self) -> usize {
        self.stage_sels.len()
    }

    /// Fresh per-task scratch buffers for this program.
    pub fn new_scratch(&self) -> VectorScratch {
        VectorScratch {
            i: vec![Vec::new(); self.n_i],
            f: vec![Vec::new(); self.n_f],
            b: vec![Vec::new(); self.n_b],
            s: vec![StrCol::default(); self.n_s],
            v: vec![Vec::new(); self.n_v],
            sels: vec![Vec::new(); self.n_sels],
        }
    }

    /// Evaluates one batch of input rows through every fused stage.
    ///
    /// On success: appends output rows to `out`, adds each stage's entry
    /// row count plus the output count to `counts` (length
    /// `n_stages() + 1`), and returns `true`.
    ///
    /// Returns `false` — with `counts` and `out` untouched — when the batch
    /// cannot be evaluated columnar-exactly: a row does not conform to the
    /// specialized input shape, or a selected lane hits a runtime error
    /// (division/modulo by zero). The caller must then evaluate the same
    /// batch row-at-a-time through the scalar tier, which reproduces values
    /// and the first error in evaluation order bit-identically.
    pub fn run_batch(
        &self,
        rows: &[Value],
        s: &mut VectorScratch,
        counts: &mut [u64],
        out: &mut Vec<Value>,
    ) -> bool {
        let n = rows.len();
        debug_assert!(n <= u32::MAX as usize, "batch exceeds lane index width");
        debug_assert_eq!(counts.len(), self.stage_sels.len() + 1);
        s.sels[0].clear();
        s.sels[0].extend(0..n as u32);
        for instr in &self.instrs {
            if !step(instr, rows, s, n) {
                return false;
            }
        }
        for (i, &sid) in self.stage_sels.iter().enumerate() {
            counts[i] += s.sels[sid].len() as u64;
        }
        counts[self.stage_sels.len()] += s.sels[self.out_sel].len() as u64;
        match &self.out {
            OutSpec::PassThrough => {
                out.extend(
                    s.sels[self.out_sel]
                        .iter()
                        .map(|&l| rows[l as usize].clone()),
                );
            }
            OutSpec::Rows(m) => {
                out.reserve(s.sels[self.out_sel].len());
                for idx in 0..s.sels[self.out_sel].len() {
                    let l = s.sels[self.out_sel][idx] as usize;
                    out.push(mat_value(m, s, l));
                }
            }
        }
        true
    }
}

fn mat_value(m: &MatNode, s: &VectorScratch, l: usize) -> Value {
    match m {
        MatNode::I(r) => Value::Int(s.i[*r][l]),
        MatNode::F(r) => Value::Float(s.f[*r][l]),
        MatNode::B(r) => Value::Bool(s.b[*r][l]),
        MatNode::S(r) => Value::str(
            std::str::from_utf8(s.s[*r].lane(l)).expect("string arena holds whole UTF-8 strings"),
        ),
        MatNode::V(r) => s.v[*r][l].clone(),
        MatNode::Tup(fs) => Value::tuple(fs.iter().map(|f| mat_value(f, s, l)).collect::<Vec<_>>()),
    }
}

/// Executes one kernel; `false` aborts the batch (shape mismatch or a
/// runtime error on a selected lane). Binary kernels whose destination
/// shares a register file with their operands temporarily move the
/// destination column out — the builder is single-assignment, so `dst`
/// never aliases `a`/`b`.
fn step(instr: &VInstr, rows: &[Value], s: &mut VectorScratch, n: usize) -> bool {
    use VInstr::*;
    match instr {
        LoadI { dst, path } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            d.clear();
            d.reserve(n);
            let mut ok = true;
            for row in rows {
                match path_get(row, path) {
                    Some(Value::Int(v)) => d.push(*v),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            s.i[*dst] = d;
            return ok;
        }
        LoadF { dst, path } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            d.clear();
            d.reserve(n);
            let mut ok = true;
            for row in rows {
                match path_get(row, path) {
                    Some(Value::Float(v)) => d.push(*v),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            s.f[*dst] = d;
            return ok;
        }
        LoadB { dst, path } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            d.clear();
            d.reserve(n);
            let mut ok = true;
            for row in rows {
                match path_get(row, path) {
                    Some(Value::Bool(v)) => d.push(*v),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            s.b[*dst] = d;
            return ok;
        }
        LoadV { dst, path } => {
            let mut d = std::mem::take(&mut s.v[*dst]);
            d.clear();
            d.reserve(n);
            let mut ok = true;
            for row in rows {
                match path_get(row, path) {
                    Some(v) => d.push(v.clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            s.v[*dst] = d;
            return ok;
        }
        SplatI { dst, v } => {
            let d = &mut s.i[*dst];
            d.clear();
            d.resize(n, *v);
        }
        SplatF { dst, v } => {
            let d = &mut s.f[*dst];
            d.clear();
            d.resize(n, *v);
        }
        SplatB { dst, v } => {
            let d = &mut s.b[*dst];
            d.clear();
            d.resize(n, *v);
        }
        SplatV { dst, v } => {
            let d = &mut s.v[*dst];
            d.clear();
            d.resize(n, v.clone());
        }
        ArithI { sel, op, dst, a, b } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let (a, b) = (&s.i[*a], &s.i[*b]);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = match op {
                    BinOp::Add => a[l].wrapping_add(b[l]),
                    BinOp::Sub => a[l].wrapping_sub(b[l]),
                    _ => a[l].wrapping_mul(b[l]),
                };
            }
            s.i[*dst] = d;
        }
        ArithF { sel, op, dst, a, b } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            let (a, b) = (&s.f[*a], &s.f[*b]);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = match op {
                    BinOp::Add => a[l] + b[l],
                    BinOp::Sub => a[l] - b[l],
                    _ => a[l] * b[l],
                };
            }
            s.f[*dst] = d;
        }
        DivF { sel, dst, a, b } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            let mut ok = true;
            {
                let (a, b) = (&s.f[*a], &s.f[*b]);
                for &l in &s.sels[*sel] {
                    let l = l as usize;
                    if b[l] == 0.0 {
                        ok = false;
                        break;
                    }
                    d[l] = a[l] / b[l];
                }
            }
            s.f[*dst] = d;
            return ok;
        }
        ModI { sel, dst, a, b } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let mut ok = true;
            {
                let (a, b) = (&s.i[*a], &s.i[*b]);
                for &l in &s.sels[*sel] {
                    let l = l as usize;
                    if b[l] == 0 {
                        ok = false;
                        break;
                    }
                    d[l] = a[l].rem_euclid(b[l]);
                }
            }
            s.i[*dst] = d;
            return ok;
        }
        CastF { sel, dst, a } => {
            ensure(&mut s.f[*dst], n);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                s.f[*dst][l] = s.i[*a][l] as f64;
            }
        }
        NegI { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let a = &s.i[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                // Plain (non-wrapping) negation, matching the scalar tier.
                d[l] = -a[l];
            }
            s.i[*dst] = d;
        }
        NegF { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            let a = &s.f[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = -a[l];
            }
            s.f[*dst] = d;
        }
        NotB { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            ensure(&mut d, n);
            let a = &s.b[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = !a[l];
            }
            s.b[*dst] = d;
        }
        AbsI { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let a = &s.i[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = a[l].abs();
            }
            s.i[*dst] = d;
        }
        AbsF { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            let a = &s.f[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = a[l].abs();
            }
            s.f[*dst] = d;
        }
        SqrtF { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            let a = &s.f[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = a[l].sqrt();
            }
            s.f[*dst] = d;
        }
        MinMaxI {
            sel,
            min,
            dst,
            a,
            b,
        } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let (a, b) = (&s.i[*a], &s.i[*b]);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = if *min { a[l].min(b[l]) } else { a[l].max(b[l]) };
            }
            s.i[*dst] = d;
        }
        MinMaxF {
            sel,
            min,
            dst,
            a,
            b,
        } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            let (a, b) = (&s.f[*a], &s.f[*b]);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                // `min_of(a, b)` is `if a <= b { a } else { b }` under the
                // total order; `max_of` is `if a >= b { a } else { b }`.
                let o = a[l].total_cmp(&b[l]);
                d[l] = if *min {
                    if o != Ordering::Greater {
                        a[l]
                    } else {
                        b[l]
                    }
                } else if o != Ordering::Less {
                    a[l]
                } else {
                    b[l]
                };
            }
            s.f[*dst] = d;
        }
        HashI { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let a = &s.i[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = hash_value(&Value::Int(a[l]));
            }
            s.i[*dst] = d;
        }
        HashF { sel, dst, a } => {
            ensure(&mut s.i[*dst], n);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                s.i[*dst][l] = hash_value(&Value::Float(s.f[*a][l]));
            }
        }
        HashB { sel, dst, a } => {
            ensure(&mut s.i[*dst], n);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                s.i[*dst][l] = hash_value(&Value::Bool(s.b[*a][l]));
            }
        }
        CmpI { sel, op, dst, a, b } => {
            ensure(&mut s.b[*dst], n);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                s.b[*dst][l] = cmp_holds(*op, s.i[*a][l].cmp(&s.i[*b][l]));
            }
        }
        CmpF { sel, op, dst, a, b } => {
            ensure(&mut s.b[*dst], n);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                let (x, y) = (s.f[*a][l], s.f[*b][l]);
                s.b[*dst][l] = match op {
                    // Value equality on floats goes through `float_key`
                    // (all NaNs equal, ±0 equal) — not `total_cmp`.
                    BinOp::Eq => Value::Float(x) == Value::Float(y),
                    BinOp::Ne => Value::Float(x) != Value::Float(y),
                    _ => cmp_holds(*op, x.total_cmp(&y)),
                };
            }
        }
        CmpB { sel, op, dst, a, b } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            ensure(&mut d, n);
            let (a, b) = (&s.b[*a], &s.b[*b]);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = cmp_holds(*op, a[l].cmp(&b[l]));
            }
            s.b[*dst] = d;
        }
        BoolB {
            sel,
            and,
            dst,
            a,
            b,
        } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            ensure(&mut d, n);
            let (a, b) = (&s.b[*a], &s.b[*b]);
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = if *and { a[l] && b[l] } else { a[l] || b[l] };
            }
            s.b[*dst] = d;
        }
        SelSplit {
            parent,
            cond,
            then_sel,
            else_sel,
        } => {
            let mut ts = std::mem::take(&mut s.sels[*then_sel]);
            let mut es = std::mem::take(&mut s.sels[*else_sel]);
            ts.clear();
            es.clear();
            let cond = &s.b[*cond];
            for &l in &s.sels[*parent] {
                if cond[l as usize] {
                    ts.push(l);
                } else {
                    es.push(l);
                }
            }
            s.sels[*then_sel] = ts;
            s.sels[*else_sel] = es;
        }
        MergeI { dst, ts, t, es, e } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            for &l in &s.sels[*ts] {
                d[l as usize] = s.i[*t][l as usize];
            }
            for &l in &s.sels[*es] {
                d[l as usize] = s.i[*e][l as usize];
            }
            s.i[*dst] = d;
        }
        MergeF { dst, ts, t, es, e } => {
            let mut d = std::mem::take(&mut s.f[*dst]);
            ensure(&mut d, n);
            for &l in &s.sels[*ts] {
                d[l as usize] = s.f[*t][l as usize];
            }
            for &l in &s.sels[*es] {
                d[l as usize] = s.f[*e][l as usize];
            }
            s.f[*dst] = d;
        }
        MergeB { dst, ts, t, es, e } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            ensure(&mut d, n);
            for &l in &s.sels[*ts] {
                d[l as usize] = s.b[*t][l as usize];
            }
            for &l in &s.sels[*es] {
                d[l as usize] = s.b[*e][l as usize];
            }
            s.b[*dst] = d;
        }
        MergeV { dst, ts, t, es, e } => {
            let mut d = std::mem::take(&mut s.v[*dst]);
            ensure_v(&mut d, n);
            for &l in &s.sels[*ts] {
                d[l as usize] = s.v[*t][l as usize].clone();
            }
            for &l in &s.sels[*es] {
                d[l as usize] = s.v[*e][l as usize].clone();
            }
            s.v[*dst] = d;
        }
        FilterApply { parent, pred, dst } => {
            let mut d = std::mem::take(&mut s.sels[*dst]);
            d.clear();
            let pred = &s.b[*pred];
            for &l in &s.sels[*parent] {
                if pred[l as usize] {
                    d.push(l);
                }
            }
            s.sels[*dst] = d;
        }
        LoadS { dst, path, dict } => {
            let mut d = std::mem::take(&mut s.s[*dst]);
            d.clear();
            d.starts.reserve(n);
            d.lens.reserve(n);
            let ok = if *dict {
                load_str_dict(&mut d, rows, path)
            } else {
                load_str_plain(&mut d, rows, path)
            };
            s.s[*dst] = d;
            return ok;
        }
        SplatS { dst, v } => {
            let d = &mut s.s[*dst];
            d.clear();
            let (start, len) = match d.push_bytes(v.as_bytes()) {
                Some(r) => r,
                None => return false, // single string wider than the arena
            };
            d.starts.resize(n, start);
            d.lens.resize(n, len);
            d.codes.resize(n, 0);
            d.dict.push((start, len));
        }
        StrLenS { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            let a = &s.s[*a];
            for &l in &s.sels[*sel] {
                let l = l as usize;
                d[l] = a.lens[l] as i64;
            }
            s.i[*dst] = d;
        }
        StrContainsS { sel, dst, a, b } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            ensure(&mut d, n);
            {
                let (a, b) = (&s.s[*a], &s.s[*b]);
                if !a.dict.is_empty() && b.dict.len() == 1 {
                    // Uniform needle over a dictionary-encoded haystack:
                    // search once per distinct value, gather through codes.
                    let needle = b.dict_entry(0);
                    let per: Vec<bool> = (0..a.dict.len())
                        .map(|c| contains_bytes(a.dict_entry(c), needle))
                        .collect();
                    for &l in &s.sels[*sel] {
                        let l = l as usize;
                        d[l] = per[a.codes[l] as usize];
                    }
                } else {
                    for &l in &s.sels[*sel] {
                        let l = l as usize;
                        d[l] = contains_bytes(a.lane(l), b.lane(l));
                    }
                }
            }
            s.b[*dst] = d;
        }
        CmpS { sel, op, dst, a, b } => {
            let mut d = std::mem::take(&mut s.b[*dst]);
            ensure(&mut d, n);
            {
                let (a, b) = (&s.s[*a], &s.s[*b]);
                for &l in &s.sels[*sel] {
                    let l = l as usize;
                    // `Value::Str` equality is content equality and its
                    // order is bytewise, so one byte-slice `cmp` covers
                    // every comparison operator.
                    d[l] = cmp_holds(*op, a.lane(l).cmp(b.lane(l)));
                }
            }
            s.b[*dst] = d;
        }
        HashS { sel, dst, a } => {
            let mut d = std::mem::take(&mut s.i[*dst]);
            ensure(&mut d, n);
            {
                let a = &s.s[*a];
                if a.dict.is_empty() {
                    for &l in &s.sels[*sel] {
                        let l = l as usize;
                        d[l] = hash_str_bytes(a.lane(l));
                    }
                } else {
                    let per: Vec<i64> = (0..a.dict.len())
                        .map(|c| hash_str_bytes(a.dict_entry(c)))
                        .collect();
                    for &l in &s.sels[*sel] {
                        let l = l as usize;
                        d[l] = per[a.codes[l] as usize];
                    }
                }
            }
            s.i[*dst] = d;
        }
        MergeS { dst, ts, t, es, e } => {
            let mut d = std::mem::take(&mut s.s[*dst]);
            d.clear();
            d.starts.resize(n, 0);
            d.lens.resize(n, 0);
            let mut ok = true;
            'merge: for (sid, src) in [(*ts, *t), (*es, *e)] {
                let src = &s.s[src];
                for &l in &s.sels[sid] {
                    let l = l as usize;
                    match d.push_bytes(src.lane(l)) {
                        Some((start, len)) => {
                            d.starts[l] = start;
                            d.lens[l] = len;
                        }
                        None => {
                            ok = false;
                            break 'merge;
                        }
                    }
                }
            }
            s.s[*dst] = d;
            return ok;
        }
    }
    true
}

/// [`VInstr::LoadS`] without dictionary encoding: every lane's bytes go
/// into the arena back-to-back.
fn load_str_plain(d: &mut StrCol, rows: &[Value], path: &[usize]) -> bool {
    for row in rows {
        match path_get(row, path) {
            Some(Value::Str(st)) => match d.push_bytes(st.as_bytes()) {
                Some((start, len)) => {
                    d.starts.push(start);
                    d.lens.push(len);
                }
                None => return false, // arena outgrew u32 offsets
            },
            _ => return false, // shape mismatch
        }
    }
    true
}

/// [`VInstr::LoadS`] with dictionary encoding: each distinct string is
/// stored once (first-appearance order); lanes carry codes plus ranges
/// shared with their dictionary entry.
fn load_str_dict(d: &mut StrCol, rows: &[Value], path: &[usize]) -> bool {
    use std::hash::Hasher;
    // hash → candidate codes; collisions compare bytes.
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    d.codes.reserve(rows.len());
    for row in rows {
        let st = match path_get(row, path) {
            Some(Value::Str(st)) => st,
            _ => return false,
        };
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        hasher.write(st.as_bytes());
        let cands = index.entry(hasher.finish()).or_default();
        let code = match cands
            .iter()
            .copied()
            .find(|&c| d.dict_entry(c as usize) == st.as_bytes())
        {
            Some(c) => c,
            None => {
                let (start, len) = match d.push_bytes(st.as_bytes()) {
                    Some(r) => r,
                    None => return false,
                };
                let c = d.dict.len() as u32;
                d.dict.push((start, len));
                cands.push(c);
                c
            }
        };
        let (start, len) = d.dict[code as usize];
        d.codes.push(code);
        d.starts.push(start);
        d.lens.push(len);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::{compile_lambda, Machine};
    use crate::expr::{Lambda, ScalarExpr};
    use crate::interp::Catalog;

    fn se_bin(op: BinOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::BinOp(op, Box::new(l), Box::new(r))
    }

    fn se_field(e: ScalarExpr, i: usize) -> ScalarExpr {
        ScalarExpr::Field(Box::new(e), i)
    }

    fn x0() -> ScalarExpr {
        se_field(ScalarExpr::var("x"), 0)
    }

    fn x1() -> ScalarExpr {
        se_field(ScalarExpr::var("x"), 1)
    }

    /// Runs one specialized Map over `rows` and compares every output
    /// against the scalar tier.
    fn check_map(lam: &Lambda, rows: &[Value]) {
        let code = compile_lambda(lam);
        let caps = code.bind(&HashMap::new());
        let catalog = Catalog::new();
        let vp = specialize(&[VecStageSpec::Map(&code, &caps)], &rows[0])
            .expect("expected specializable program");
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(rows, &mut scratch, &mut counts, &mut out));
        assert_eq!(counts, vec![rows.len() as u64; 2]);
        let mut m = Machine::new();
        for (row, got) in rows.iter().zip(&out) {
            let want = code
                .eval(std::slice::from_ref(row), &caps, &mut m, &catalog)
                .expect("scalar tier errored where vector tier succeeded");
            assert_eq!(&want, got, "row {row:?}");
        }
    }

    fn int_pair_rows(n: i64) -> Vec<Value> {
        (0..n)
            .map(|i| Value::tuple(vec![Value::Int(i), Value::Int(i * 3 - 7)]))
            .collect()
    }

    #[test]
    fn arithmetic_map_matches_scalar() {
        // (x.0 * 2 + x.1 % 7, hash_of(x.0), min_of(x.0, x.1))
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(vec![
                se_bin(
                    BinOp::Add,
                    se_bin(BinOp::Mul, x0(), ScalarExpr::lit(Value::Int(2))),
                    se_bin(BinOp::Mod, x1(), ScalarExpr::lit(Value::Int(7))),
                ),
                ScalarExpr::call(BuiltinFn::HashOf, vec![x0()]),
                ScalarExpr::call(BuiltinFn::MinOf, vec![x0(), x1()]),
            ]),
        );
        check_map(&lam, &int_pair_rows(100));
    }

    #[test]
    fn float_kernels_match_scalar() {
        // sqrt(abs(x.0 - x.1)) / (x.0 * x.0 + 1.5)  over float pairs
        let lam = Lambda::new(
            ["x"],
            se_bin(
                BinOp::Div,
                ScalarExpr::call(
                    BuiltinFn::Sqrt,
                    vec![ScalarExpr::call(
                        BuiltinFn::Abs,
                        vec![se_bin(BinOp::Sub, x0(), x1())],
                    )],
                ),
                se_bin(
                    BinOp::Add,
                    se_bin(BinOp::Mul, x0(), x0()),
                    ScalarExpr::lit(Value::Float(1.5)),
                ),
            ),
        );
        let rows: Vec<Value> = (0..64)
            .map(|i| {
                Value::tuple(vec![
                    Value::Float(i as f64 * 0.25 - 3.0),
                    Value::Float(10.0 - i as f64),
                ])
            })
            .collect();
        check_map(&lam, &rows);
    }

    #[test]
    fn wrapping_overflow_matches_scalar() {
        let lam = Lambda::new(["x"], se_bin(BinOp::Mul, x0(), x0()));
        let rows = vec![
            Value::tuple(vec![Value::Int(i64::MAX), Value::Int(0)]),
            Value::tuple(vec![Value::Int(i64::MIN / 3), Value::Int(0)]),
        ];
        check_map(&lam, &rows);
    }

    #[test]
    fn mixed_int_float_comparison_matches_scalar() {
        // if x.0 < x.1 { x.0 * 2 } else { -x.0 }  with Int x.0, Float x.1
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::If(
                Box::new(se_bin(BinOp::Lt, x0(), x1())),
                Box::new(se_bin(BinOp::Mul, x0(), ScalarExpr::lit(Value::Int(2)))),
                Box::new(ScalarExpr::UnOp(UnOp::Neg, Box::new(x0()))),
            ),
        );
        let rows: Vec<Value> = (0..50)
            .map(|i| Value::tuple(vec![Value::Int(i - 25), Value::Float(0.5 * i as f64 - 9.0)]))
            .collect();
        check_map(&lam, &rows);
    }

    #[test]
    fn if_selection_masks_untaken_branch_errors() {
        // if x.1 == 0.0 { 0.0 } else { x.0 / x.1 } — rows with x.1 == 0.0
        // must NOT abort the batch: the division kernel runs only over the
        // else-branch lanes.
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::If(
                Box::new(se_bin(BinOp::Eq, x1(), ScalarExpr::lit(Value::Float(0.0)))),
                Box::new(ScalarExpr::lit(Value::Float(0.0))),
                Box::new(se_bin(BinOp::Div, x0(), x1())),
            ),
        );
        let rows: Vec<Value> = (0..40)
            .map(|i| {
                Value::tuple(vec![
                    Value::Float(i as f64),
                    Value::Float(if i % 5 == 0 { 0.0 } else { i as f64 - 20.0 }),
                ])
            })
            .collect();
        check_map(&lam, &rows);
    }

    #[test]
    fn division_error_aborts_batch_untouched() {
        let lam = Lambda::new(["x"], se_bin(BinOp::Div, x0(), x1()));
        let code = compile_lambda(&lam);
        let caps = code.bind(&HashMap::new());
        let vp = specialize(
            &[VecStageSpec::Map(&code, &caps)],
            &Value::tuple(vec![Value::Float(1.0), Value::Float(1.0)]),
        )
        .unwrap();
        let rows = vec![
            Value::tuple(vec![Value::Float(1.0), Value::Float(2.0)]),
            Value::tuple(vec![Value::Float(1.0), Value::Float(0.0)]),
        ];
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(!vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        assert_eq!(counts, vec![0, 0], "counts untouched on abort");
        assert!(out.is_empty(), "output untouched on abort");
        // The same scratch still works on a clean batch afterwards.
        let clean = vec![Value::tuple(vec![Value::Float(9.0), Value::Float(3.0)])];
        assert!(vp.run_batch(&clean, &mut scratch, &mut counts, &mut out));
        assert_eq!(out, vec![Value::Float(3.0)]);
    }

    #[test]
    fn shape_mismatch_aborts_batch() {
        let lam = Lambda::new(
            ["x"],
            se_bin(BinOp::Add, x0(), ScalarExpr::lit(Value::Int(1))),
        );
        let code = compile_lambda(&lam);
        let caps = code.bind(&HashMap::new());
        let vp = specialize(
            &[VecStageSpec::Map(&code, &caps)],
            &Value::tuple(vec![Value::Int(0), Value::Int(0)]),
        )
        .unwrap();
        let rows = vec![
            Value::tuple(vec![Value::Int(1), Value::Int(2)]),
            Value::tuple(vec![Value::Float(1.0), Value::Int(2)]), // wrong shape
        ];
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(!vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        assert_eq!(counts, vec![0, 0]);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_chain_narrows_selection_and_passes_rows_through() {
        // filter (x.0 % 2 == 0) — PassThrough output, counts reflect the
        // narrowed selection.
        let lam = Lambda::new(
            ["x"],
            se_bin(
                BinOp::Eq,
                se_bin(BinOp::Mod, x0(), ScalarExpr::lit(Value::Int(2))),
                ScalarExpr::lit(Value::Int(0)),
            ),
        );
        let code = compile_lambda(&lam);
        let caps = code.bind(&HashMap::new());
        let rows = int_pair_rows(31);
        let vp = specialize(&[VecStageSpec::Filter(&code, &caps)], &rows[0]).unwrap();
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        let want: Vec<Value> = rows
            .iter()
            .filter(|r| match r {
                Value::Tuple(fs) => matches!(fs[0], Value::Int(i) if i % 2 == 0),
                _ => unreachable!(),
            })
            .cloned()
            .collect();
        assert_eq!(out, want);
        assert_eq!(counts, vec![31, 16]);
    }

    #[test]
    fn fused_map_filter_map_matches_scalar_loop() {
        let m1 = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(vec![
                se_bin(BinOp::Add, x0(), x1()),
                se_bin(BinOp::Sub, x0(), x1()),
            ]),
        );
        let f = Lambda::new(["y"], {
            let y0 = se_field(ScalarExpr::var("y"), 0);
            se_bin(BinOp::Gt, y0, ScalarExpr::lit(Value::Int(10)))
        });
        let m2 = Lambda::new(["z"], {
            let z0 = se_field(ScalarExpr::var("z"), 0);
            let z1 = se_field(ScalarExpr::var("z"), 1);
            se_bin(BinOp::Mul, z0, z1)
        });
        let (c1, c2, c3) = (compile_lambda(&m1), compile_lambda(&f), compile_lambda(&m2));
        let base = HashMap::new();
        let (b1, b2, b3) = (c1.bind(&base), c2.bind(&base), c3.bind(&base));
        let rows = int_pair_rows(200);
        let vp = specialize(
            &[
                VecStageSpec::Map(&c1, &b1),
                VecStageSpec::Filter(&c2, &b2),
                VecStageSpec::Map(&c3, &b3),
            ],
            &rows[0],
        )
        .unwrap();
        assert_eq!(vp.n_stages(), 3);
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 4];
        let mut out = Vec::new();
        assert!(vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        // Scalar reference: the same chain row-at-a-time.
        let catalog = Catalog::new();
        let mut m = Machine::new();
        let mut want = Vec::new();
        let mut want_counts = vec![0u64; 4];
        for row in &rows {
            want_counts[0] += 1;
            let v1 = c1
                .eval(std::slice::from_ref(row), &b1, &mut m, &catalog)
                .unwrap();
            want_counts[1] += 1;
            let keep = c2
                .eval(std::slice::from_ref(&v1), &b2, &mut m, &catalog)
                .unwrap();
            if !matches!(keep, Value::Bool(true)) {
                continue;
            }
            want_counts[2] += 1;
            want.push(
                c3.eval(std::slice::from_ref(&v1), &b3, &mut m, &catalog)
                    .unwrap(),
            );
            want_counts[3] += 1;
        }
        assert_eq!(out, want);
        assert_eq!(counts, want_counts);
    }

    #[test]
    fn captures_are_splatted() {
        let lam = Lambda::new(["x"], se_bin(BinOp::Mul, x0(), ScalarExpr::var("scale")));
        let code = compile_lambda(&lam);
        let mut base = HashMap::new();
        base.insert("scale".to_string(), Value::Int(17));
        let caps = code.bind(&base);
        let rows = int_pair_rows(10);
        let vp = specialize(&[VecStageSpec::Map(&code, &caps)], &rows[0]).unwrap();
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        assert_eq!(out[3], Value::Int(51));
    }

    #[test]
    fn non_specializable_programs_are_rejected() {
        let sample = Value::tuple(vec![Value::Int(0), Value::Int(0)]);
        let base = HashMap::new();
        // String builtin over a non-string slot: `as_str` errors per row.
        let s = compile_lambda(&Lambda::new(
            ["x"],
            ScalarExpr::call(BuiltinFn::StrLen, vec![x0()]),
        ));
        let sc = s.bind(&base);
        assert!(specialize(&[VecStageSpec::Map(&s, &sc)], &sample).is_none());
        // Vector builtin.
        let d = compile_lambda(&Lambda::new(
            ["x"],
            ScalarExpr::call(BuiltinFn::Dist, vec![x0(), x1()]),
        ));
        let dc = d.bind(&base);
        assert!(specialize(&[VecStageSpec::Map(&d, &dc)], &sample).is_none());
        // Unbound capture.
        let u = compile_lambda(&Lambda::new(["x"], ScalarExpr::var("missing")));
        let uc = u.bind(&base);
        assert!(specialize(&[VecStageSpec::Map(&u, &uc)], &sample).is_none());
        // Two-parameter lambda (fold `uni`): not a single-input stage.
        let two = compile_lambda(&Lambda::new(
            ["a", "b"],
            se_bin(BinOp::Add, ScalarExpr::var("a"), ScalarExpr::var("b")),
        ));
        let tc = two.bind(&base);
        assert!(specialize(&[VecStageSpec::Map(&two, &tc)], &sample).is_none());
        // Non-Bool filter result.
        let nb = compile_lambda(&Lambda::new(["x"], x0()));
        let nc = nb.bind(&base);
        assert!(specialize(&[VecStageSpec::Filter(&nb, &nc)], &sample).is_none());
        // Non-tuple sample shape for a field access.
        let fa = compile_lambda(&Lambda::new(["x"], x0()));
        let fc = fa.bind(&base);
        assert!(specialize(&[VecStageSpec::Map(&fa, &fc)], &Value::Int(3)).is_none());
    }

    #[test]
    fn float_eq_uses_value_equality_not_total_order() {
        // -0.0 == 0.0 under Value equality (float_key), and NaN == NaN.
        let lam = Lambda::new(["x"], se_bin(BinOp::Eq, x0(), x1()));
        let rows = vec![
            Value::tuple(vec![Value::Float(-0.0), Value::Float(0.0)]),
            Value::tuple(vec![Value::Float(f64::NAN), Value::Float(f64::NAN)]),
            Value::tuple(vec![Value::Float(1.0), Value::Float(2.0)]),
        ];
        check_map(&lam, &rows);
    }

    // ------------------------------------------------------ string kernels

    /// `(Int, Str, Str)` rows mixing short, empty, repeated, and multi-byte
    /// UTF-8 strings.
    fn str_rows() -> Vec<Value> {
        let words = ["hello", "", "héllo wörld", "spam@x.test", "hell", "zz"];
        (0..48i64)
            .map(|i| {
                Value::tuple(vec![
                    Value::Int(i),
                    Value::str(words[i as usize % words.len()]),
                    Value::str(format!("w{}", i % 7)),
                ])
            })
            .collect()
    }

    /// Like [`check_map`] but specializes from an explicit multi-row
    /// sample (exercising the dictionary-encoding heuristic).
    fn check_map_sampled(lam: &Lambda, samples: &[Value], rows: &[Value]) -> VectorPipeline {
        let code = compile_lambda(lam);
        let caps = code.bind(&HashMap::new());
        let catalog = Catalog::new();
        let vp = specialize_sampled(&[VecStageSpec::Map(&code, &caps)], samples)
            .expect("expected specializable program");
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(rows, &mut scratch, &mut counts, &mut out));
        let mut m = Machine::new();
        for (row, got) in rows.iter().zip(&out) {
            let want = code
                .eval(std::slice::from_ref(row), &caps, &mut m, &catalog)
                .expect("scalar tier errored where vector tier succeeded");
            assert_eq!(&want, got, "row {row:?}");
        }
        vp
    }

    #[test]
    fn string_kernels_match_scalar() {
        // (str_len(x.1), str_contains(x.1, "ell"), hash_of(x.2),
        //  x.1 == x.2, x.1 < x.2, x.1)
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::call(BuiltinFn::StrLen, vec![x1()]),
                ScalarExpr::call(
                    BuiltinFn::StrContains,
                    vec![x1(), ScalarExpr::lit(Value::str("ell"))],
                ),
                ScalarExpr::call(BuiltinFn::HashOf, vec![se_field(ScalarExpr::var("x"), 2)]),
                se_bin(BinOp::Eq, x1(), se_field(ScalarExpr::var("x"), 2)),
                se_bin(BinOp::Lt, x1(), se_field(ScalarExpr::var("x"), 2)),
                x1(),
            ]),
        );
        check_map(&lam, &str_rows());
    }

    #[test]
    fn string_hash_kernel_matches_value_hash() {
        for s in ["", "a", "hello", "héllo wörld", &"long".repeat(100)] {
            assert_eq!(
                hash_str_bytes(s.as_bytes()),
                hash_value(&Value::str(s)),
                "hash_str_bytes must replay Value::Str's Hash impl for {s:?}"
            );
        }
    }

    #[test]
    fn string_filter_narrows_selection_and_passes_rows_through() {
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::call(
                BuiltinFn::StrContains,
                vec![x1(), ScalarExpr::lit(Value::str("l"))],
            ),
        );
        let code = compile_lambda(&lam);
        let caps = code.bind(&HashMap::new());
        let rows = str_rows();
        let vp = specialize(&[VecStageSpec::Filter(&code, &caps)], &rows[0]).unwrap();
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        let want: Vec<Value> = rows
            .iter()
            .filter(|r| match r {
                Value::Tuple(fs) => matches!(&fs[1], Value::Str(s) if s.contains('l')),
                _ => unreachable!(),
            })
            .cloned()
            .collect();
        assert_eq!(counts[0], rows.len() as u64);
        assert_eq!(counts[1], want.len() as u64);
        assert_eq!(out, want);
    }

    #[test]
    fn if_over_strings_merges_branch_results() {
        // if x.0 % 2 == 0 { x.1 } else { x.2 } — a string-typed If needs
        // MergeS to stitch the two branch columns back together.
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::If(
                Box::new(se_bin(
                    BinOp::Eq,
                    se_bin(BinOp::Mod, x0(), ScalarExpr::lit(Value::Int(2))),
                    ScalarExpr::lit(Value::Int(0)),
                )),
                Box::new(x1()),
                Box::new(se_field(ScalarExpr::var("x"), 2)),
            ),
        );
        check_map(&lam, &str_rows());
    }

    #[test]
    fn string_capture_is_splatted() {
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::call(BuiltinFn::StrContains, vec![x1(), ScalarExpr::var("pat")]),
        );
        let code = compile_lambda(&lam);
        let mut base = HashMap::new();
        base.insert("pat".to_string(), Value::str("héllo"));
        let caps = code.bind(&base);
        let rows = str_rows();
        let vp = specialize(&[VecStageSpec::Map(&code, &caps)], &rows[0]).unwrap();
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        for (row, got) in rows.iter().zip(&out) {
            let want = match row {
                Value::Tuple(fs) => matches!(&fs[1], Value::Str(s) if s.contains("héllo")),
                _ => unreachable!(),
            };
            assert_eq!(got, &Value::Bool(want));
        }
    }

    #[test]
    fn dictionary_encoding_from_low_cardinality_sample() {
        // x.2 cycles through 7 values over 48 rows: well under half
        // distinct, so a 48-row sample dictionary-encodes the load.
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::call(BuiltinFn::HashOf, vec![se_field(ScalarExpr::var("x"), 2)]),
                ScalarExpr::call(
                    BuiltinFn::StrContains,
                    vec![
                        se_field(ScalarExpr::var("x"), 2),
                        ScalarExpr::lit(Value::str("3")),
                    ],
                ),
            ]),
        );
        let rows = str_rows();
        let vp = check_map_sampled(&lam, &rows, &rows);
        assert!(
            vp.instrs
                .iter()
                .any(|i| matches!(i, VInstr::LoadS { dict: true, .. })),
            "low-cardinality sample must dictionary-encode the load"
        );
        // A single-row sample can never clear DICT_MIN_SAMPLE.
        let vp1 = check_map_sampled(&lam, &rows[..1], &rows);
        assert!(
            vp1.instrs
                .iter()
                .all(|i| !matches!(i, VInstr::LoadS { dict: true, .. })),
            "tiny samples must not trigger dictionary encoding"
        );
    }

    #[test]
    fn dictionary_with_one_distinct_value() {
        let rows: Vec<Value> = (0..32i64)
            .map(|i| Value::tuple(vec![Value::Int(i), Value::str("only"), Value::str("only")]))
            .collect();
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::call(BuiltinFn::HashOf, vec![x1()]),
                ScalarExpr::call(
                    BuiltinFn::StrContains,
                    vec![x1(), ScalarExpr::lit(Value::str("nl"))],
                ),
                ScalarExpr::call(BuiltinFn::StrLen, vec![x1()]),
            ]),
        );
        let vp = check_map_sampled(&lam, &rows, &rows);
        assert!(vp
            .instrs
            .iter()
            .any(|i| matches!(i, VInstr::LoadS { dict: true, .. })));
    }

    #[test]
    fn empty_strings_and_empty_batches() {
        // All-empty column: zero-length slices at every arena offset.
        let rows: Vec<Value> = (0..16i64)
            .map(|i| Value::tuple(vec![Value::Int(i), Value::str(""), Value::str("")]))
            .collect();
        let lam = Lambda::new(
            ["x"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::call(BuiltinFn::StrLen, vec![x1()]),
                ScalarExpr::call(
                    BuiltinFn::StrContains,
                    vec![x1(), ScalarExpr::lit(Value::str(""))],
                ),
                se_bin(BinOp::Eq, x1(), se_field(ScalarExpr::var("x"), 2)),
                ScalarExpr::call(BuiltinFn::HashOf, vec![x1()]),
            ]),
        );
        check_map(&lam, &rows);
        // Empty batch: no lanes, no output, counts all zero.
        let code = compile_lambda(&lam);
        let caps = code.bind(&HashMap::new());
        let vp = specialize(&[VecStageSpec::Map(&code, &caps)], &rows[0]).unwrap();
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(vp.run_batch(&[], &mut scratch, &mut counts, &mut out));
        assert_eq!(counts, vec![0, 0]);
        assert!(out.is_empty());
    }

    #[test]
    fn string_shape_mismatch_aborts_batch() {
        let lam = Lambda::new(["x"], ScalarExpr::call(BuiltinFn::StrLen, vec![x1()]));
        let rows = str_rows();
        let code = compile_lambda(&lam);
        let caps = code.bind(&HashMap::new());
        let vp = specialize(&[VecStageSpec::Map(&code, &caps)], &rows[0]).unwrap();
        let bad = vec![
            rows[0].clone(),
            Value::tuple(vec![Value::Int(1), Value::Int(2), Value::str("x")]),
        ];
        let mut scratch = vp.new_scratch();
        let mut counts = vec![0u64; 2];
        let mut out = Vec::new();
        assert!(!vp.run_batch(&bad, &mut scratch, &mut counts, &mut out));
        assert_eq!(counts, vec![0, 0]);
        assert!(out.is_empty());
        // The same scratch still works on a conforming batch afterwards.
        assert!(vp.run_batch(&rows, &mut scratch, &mut counts, &mut out));
        assert_eq!(out.len(), rows.len());
    }
}
