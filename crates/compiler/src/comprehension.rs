//! Monad comprehensions: the core intermediate representation
//! (paper, Sections 2.2.3 and 4.1).
//!
//! A comprehension `[[ e | qs ]]^T` consists of a *head* `e`, a sequence of
//! *qualifiers* `qs` (generators `x ← xs` and guards `p`), and a *monad* `T`
//! (bag construction, flattened bag construction, or a fold algebra).
//!
//! This module implements:
//!
//! * **MC⁻¹ resugaring** ([`resugar`]): recovering comprehensions from
//!   desugared `map`/`flatMap`/`withFilter`/`fold` chains — the inverse of
//!   Scala's for-comprehension desugaring;
//! * **normalization** ([`normalize`]): the paper's three rewrite rules —
//!   head unnesting of `flatten`, generator unnesting (compile-time *fusion*
//!   of map/fold chains), and `exists`-unnesting (the generalization of
//!   Kim's type-N optimization that turns nested existential predicates into
//!   join opportunities).
//!
//! Generators introduced by exists-unnesting carry a [`SemiKind`] marker so
//! the combinator lowering can emit semi/anti-joins, preserving the
//! multiplicity semantics of the original predicate.

use std::collections::HashSet;
use std::fmt;

use crate::bag_expr::BagExpr;
use crate::expr::{BinOp, FoldKind, FoldOp, Lambda, ScalarExpr, UnOp};
use crate::freshen::NameGen;

/// The monad a comprehension constructs its result in.
#[derive(Clone, Debug, PartialEq)]
pub enum Monad {
    /// `[[ e | qs ]]^Bag` — construct a bag of head values.
    Bag,
    /// `flatten [[ e | qs ]]` — the head is bag-valued; union the heads.
    FlattenBag,
    /// `[[ e | qs ]]^fold` — evaluate the head values with a fold algebra.
    Fold(FoldOp),
}

/// How an existentially introduced generator joins with the rest of the
/// comprehension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemiKind {
    /// From a positive `exists` — lowers to a left semi-join.
    Exists,
    /// From a negated `exists` — lowers to a left anti-join.
    NotExists,
}

/// A generator source: an atomic bag expression, or a nested comprehension
/// (before normalization splices it away).
#[derive(Clone, Debug, PartialEq)]
pub enum GenSource {
    /// A non-comprehended bag term (`Read`, `Ref`, `GroupBy`, …).
    Atom(BagExpr),
    /// A nested comprehension.
    Comp(Box<Comprehension>),
}

/// A generator qualifier `var ← source`.
#[derive(Clone, Debug, PartialEq)]
pub struct Generator {
    /// The bound variable.
    pub var: String,
    /// Where the values come from.
    pub source: GenSource,
    /// Set when this generator was introduced by exists-unnesting.
    pub semi: Option<SemiKind>,
}

/// A qualifier: generator or guard.
#[derive(Clone, Debug, PartialEq)]
pub enum Qual {
    /// `x ← xs`.
    Gen(Generator),
    /// A boolean filter.
    Guard(ScalarExpr),
}

/// A monad comprehension `[[ head | quals ]]^monad`.
#[derive(Clone, Debug, PartialEq)]
pub struct Comprehension {
    /// The head expression (bag-valued for [`Monad::FlattenBag`]).
    pub head: ScalarExpr,
    /// Qualifiers, in dependency order.
    pub quals: Vec<Qual>,
    /// The target monad.
    pub monad: Monad,
}

impl Comprehension {
    /// Variables bound by this comprehension's generators.
    pub fn gen_vars(&self) -> HashSet<String> {
        self.quals
            .iter()
            .filter_map(|q| match q {
                Qual::Gen(g) => Some(g.var.clone()),
                Qual::Guard(_) => None,
            })
            .collect()
    }
}

/// True if the bag expression is "comprehendable": it desugars from
/// comprehension syntax and will be resugared rather than treated atomically.
fn is_comprehended(e: &BagExpr) -> bool {
    matches!(
        e,
        BagExpr::Map { .. } | BagExpr::Filter { .. } | BagExpr::FlatMap { .. }
    )
}

/// Resugars the source position of a generator.
pub fn resugar_source(e: &BagExpr, gen: &mut NameGen) -> GenSource {
    if is_comprehended(e) {
        GenSource::Comp(Box::new(resugar(e, gen)))
    } else {
        GenSource::Atom(e.clone())
    }
}

/// MC⁻¹: recovers a comprehension from an operator chain (paper, the
/// translation scheme in Section 4.1):
///
/// ```text
/// t0.map(x ⟼ t)        ⇒ [[ t | x ← MC⁻¹(t0) ]]^Bag
/// t0.withFilter(x ⟼ t) ⇒ [[ x | x ← MC⁻¹(t0), t ]]^Bag
/// t0.flatMap(x ⟼ t)    ⇒ flatten [[ t | x ← MC⁻¹(t0) ]]^Bag
/// t0.fold(e, s, u)      ⇒ [[ x | x ← MC⁻¹(t0) ]]^fold(e,s,u)
/// ```
pub fn resugar(e: &BagExpr, gen: &mut NameGen) -> Comprehension {
    match e {
        BagExpr::Map { input, f } => Comprehension {
            head: f.body.clone(),
            quals: vec![Qual::Gen(Generator {
                var: f.params[0].clone(),
                source: resugar_source(input, gen),
                semi: None,
            })],
            monad: Monad::Bag,
        },
        BagExpr::Filter { input, p } => Comprehension {
            head: ScalarExpr::var(p.params[0].clone()),
            quals: vec![
                Qual::Gen(Generator {
                    var: p.params[0].clone(),
                    source: resugar_source(input, gen),
                    semi: None,
                }),
                Qual::Guard(p.body.clone()),
            ],
            monad: Monad::Bag,
        },
        BagExpr::FlatMap { input, f } => Comprehension {
            head: ScalarExpr::BagOf(Box::new(f.body.clone())),
            quals: vec![Qual::Gen(Generator {
                var: f.param.clone(),
                source: resugar_source(input, gen),
                semi: None,
            })],
            monad: Monad::FlattenBag,
        },
        atom => {
            let v = gen.fresh("x");
            Comprehension {
                head: ScalarExpr::var(v.clone()),
                quals: vec![Qual::Gen(Generator {
                    var: v,
                    source: GenSource::Atom(atom.clone()),
                    semi: None,
                })],
                monad: Monad::Bag,
            }
        }
    }
}

/// Resugars a terminal fold `t0.fold(e, s, u)` into
/// `[[ x | x ← MC⁻¹(t0) ]]^fold`.
pub fn resugar_fold(bag: &BagExpr, op: &FoldOp, gen: &mut NameGen) -> Comprehension {
    let v = gen.fresh("x");
    Comprehension {
        head: ScalarExpr::var(v.clone()),
        quals: vec![Qual::Gen(Generator {
            var: v,
            source: resugar_source(bag, gen),
            semi: None,
        })],
        monad: Monad::Fold(op.clone()),
    }
}

/// Options controlling which normalization rules fire.
#[derive(Clone, Copy, Debug)]
pub struct NormalizeOpts {
    /// Enable the head/generator unnesting (fusion) rules.
    pub fusion: bool,
    /// Enable exists-unnesting of nested existential guards.
    pub unnest_exists: bool,
}

impl Default for NormalizeOpts {
    fn default() -> Self {
        NormalizeOpts {
            fusion: true,
            unnest_exists: true,
        }
    }
}

/// Statistics of a normalization run (feeds the optimization report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    /// Generator/head unnesting (fusion) rule applications.
    pub fusions: usize,
    /// Exists-unnesting rule applications.
    pub exists_unnested: usize,
}

/// Normalizes a comprehension to a flat form whose generators are all atoms:
/// applies guard splitting and the paper's three rewrite rules to fixpoint.
pub fn normalize(
    mut c: Comprehension,
    opts: NormalizeOpts,
    gen: &mut NameGen,
) -> (Comprehension, NormalizeStats) {
    let mut stats = NormalizeStats::default();
    // First normalize nested comprehensions bottom-up.
    for q in &mut c.quals {
        if let Qual::Gen(g) = q {
            if let GenSource::Comp(inner) = &g.source {
                let (norm, inner_stats) = normalize((**inner).clone(), opts, gen);
                stats.fusions += inner_stats.fusions;
                stats.exists_unnested += inner_stats.exists_unnested;
                g.source = GenSource::Comp(Box::new(norm));
            }
        }
    }

    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds < 10_000, "comprehension normalization diverged");

        if split_guards(&mut c) {
            changed = true;
            continue;
        }
        if opts.fusion && unnest_generator(&mut c, opts, gen, &mut stats) {
            changed = true;
            continue;
        }
        if opts.fusion && unnest_flatten_head(&mut c, gen, &mut stats) {
            changed = true;
            continue;
        }
        if opts.unnest_exists && unnest_exists(&mut c, gen, &mut stats) {
            changed = true;
            continue;
        }
    }
    (c, stats)
}

/// Splits conjunction guards: `Guard(a ∧ b) ⇒ Guard(a), Guard(b)`.
fn split_guards(c: &mut Comprehension) -> bool {
    for (i, q) in c.quals.iter().enumerate() {
        if let Qual::Guard(ScalarExpr::BinOp(BinOp::And, a, b)) = q {
            let (a, b) = ((**a).clone(), (**b).clone());
            c.quals.splice(i..=i, [Qual::Guard(a), Qual::Guard(b)]);
            return true;
        }
    }
    false
}

/// Rule 2 of the paper:
/// `[[ t | qs, x ← [[ t' | qs' ]], qs'' ]] ⇒ [[ t[t'/x] | qs, qs', qs''[t'/x] ]]`.
///
/// This performs *fusion* at compile time: map and fold chains collapse into
/// a single comprehension and will execute as one task.
fn unnest_generator(
    c: &mut Comprehension,
    opts: NormalizeOpts,
    gen: &mut NameGen,
    stats: &mut NormalizeStats,
) -> bool {
    for i in 0..c.quals.len() {
        let Qual::Gen(g) = &c.quals[i] else { continue };
        let GenSource::Comp(inner) = &g.source else {
            continue;
        };
        match inner.monad {
            Monad::Bag => {
                let var = g.var.clone();
                let semi = g.semi;
                let inner = (**inner).clone();
                // Substitute the inner head for the generator variable in
                // all subsequent qualifiers and in the head.
                let head_expr = inner.head.clone();
                let mut new_quals: Vec<Qual> =
                    Vec::with_capacity(c.quals.len() + inner.quals.len());
                new_quals.extend_from_slice(&c.quals[..i]);
                // Splice the inner qualifiers. If the outer generator was
                // existential, its replacement generators inherit the marker
                // (an element "exists" iff the underlying elements do).
                for q in inner.quals {
                    match q {
                        Qual::Gen(mut ig) => {
                            if semi.is_some() && ig.semi.is_none() {
                                ig.semi = semi;
                            }
                            new_quals.push(Qual::Gen(ig));
                        }
                        guard => new_quals.push(guard),
                    }
                }
                for q in &c.quals[i + 1..] {
                    new_quals.push(substitute_in_qual(q, &var, &head_expr));
                }
                c.head = c.head.substitute(&var, &head_expr);
                c.quals = new_quals;
                stats.fusions += 1;
                return true;
            }
            Monad::FlattenBag => {
                // `x ← flatten [[ b | qs' ]]` ⇒ `qs', x ← b`.
                let var = g.var.clone();
                let semi = g.semi;
                let inner = (**inner).clone();
                let bag_head = match inner.head {
                    ScalarExpr::BagOf(b) => *b,
                    other => BagExpr::OfValue(Box::new(other)),
                };
                let mut new_quals: Vec<Qual> =
                    Vec::with_capacity(c.quals.len() + inner.quals.len());
                new_quals.extend_from_slice(&c.quals[..i]);
                for q in inner.quals {
                    match q {
                        Qual::Gen(mut ig) => {
                            if semi.is_some() && ig.semi.is_none() {
                                ig.semi = semi;
                            }
                            new_quals.push(Qual::Gen(ig));
                        }
                        guard => new_quals.push(guard),
                    }
                }
                new_quals.push(Qual::Gen(Generator {
                    var,
                    source: {
                        let src = resugar_source(&bag_head, gen);
                        if let GenSource::Comp(inner2) = src {
                            let (norm, s2) = normalize((*inner2).clone(), opts, gen);
                            stats.fusions += s2.fusions;
                            stats.exists_unnested += s2.exists_unnested;
                            GenSource::Comp(Box::new(norm))
                        } else {
                            src
                        }
                    },
                    semi,
                }));
                new_quals.extend_from_slice(&c.quals[i + 1..]);
                c.quals = new_quals;
                stats.fusions += 1;
                return true;
            }
            Monad::Fold(_) => {
                // A fold is scalar-valued; it cannot be a generator source.
                // (Construction never produces this.)
                continue;
            }
        }
    }
    false
}

/// Rule 1 of the paper:
/// `flatten [[ [[ e | qs' ]] | qs ]] ⇒ [[ e | qs, qs' ]]`.
fn unnest_flatten_head(
    c: &mut Comprehension,
    gen: &mut NameGen,
    stats: &mut NormalizeStats,
) -> bool {
    if c.monad != Monad::FlattenBag {
        return false;
    }
    let ScalarExpr::BagOf(b) = &c.head else {
        return false;
    };
    let inner = resugar(b, gen);
    // The inner comprehension references outer generator variables; its
    // qualifiers are appended *after* the outer ones, so scoping holds.
    c.quals.extend(inner.quals);
    c.head = inner.head;
    c.monad = match inner.monad {
        Monad::Bag => Monad::Bag,
        Monad::FlattenBag => Monad::FlattenBag,
        Monad::Fold(_) => unreachable!("resugar of a bag never yields a fold comprehension"),
    };
    stats.fusions += 1;
    true
}

/// Rule 3 of the paper (exists-unnesting, generalizing Kim's type-N):
/// `[[ e | qs, [[ p | qs'' ]]^exists, qs' ]] ⇒ [[ e | qs, qs'', p, qs' ]]`.
///
/// A guard of the form `bag.exists(p)` (or its negation) whose bag does not
/// depend on the comprehension's own generators is replaced by an
/// existentially marked generator over the bag plus the predicate as a plain
/// guard. Lowering turns the marked generator into a semi-/anti-join, letting
/// the runtime choose broadcast vs. repartition strategies instead of
/// hard-coding a broadcast in the user's filter (Section 4.2.1).
fn unnest_exists(c: &mut Comprehension, gen: &mut NameGen, stats: &mut NormalizeStats) -> bool {
    let gen_vars = c.gen_vars();
    for i in 0..c.quals.len() {
        let Qual::Guard(g) = &c.quals[i] else {
            continue;
        };
        let (fold_term, negated) = match g {
            ScalarExpr::Fold(bag, op) if op.kind == FoldKind::Exists => ((bag, op), false),
            ScalarExpr::UnOp(UnOp::Not, inner) => match &**inner {
                ScalarExpr::Fold(bag, op) if op.kind == FoldKind::Exists => ((bag, op), true),
                _ => continue,
            },
            _ => continue,
        };
        let (bag, op) = fold_term;
        // The inner bag must be independent of this comprehension's
        // generators; a correlated *predicate* is fine (that is the join
        // condition), a correlated *source* is not unnestable here.
        if bag.free_vars().intersection(&gen_vars).next().is_some() {
            continue;
        }
        let bag = (**bag).clone();
        let pred = op.sng.clone();
        let var = gen.fresh("ex");
        let guard = pred.apply(&[ScalarExpr::var(var.clone())]);
        let kind = if negated {
            SemiKind::NotExists
        } else {
            SemiKind::Exists
        };
        let generator = Qual::Gen(Generator {
            var,
            source: resugar_source(&bag, gen),
            semi: Some(kind),
        });
        c.quals.splice(i..=i, [generator, Qual::Guard(guard)]);
        stats.exists_unnested += 1;
        return true;
    }
    false
}

/// Reifies a (bag- or flatten-monad) comprehension back into an operator
/// chain — the forward desugaring that Scala's compiler performs on
/// for-comprehensions. Used for dependent generator bodies during lowering
/// and for semantics-preservation tests (`desugar ∘ normalize ∘ resugar`
/// must be observationally equal to the original chain).
///
/// # Panics
///
/// On fold-monad comprehensions and on existential generators (which have no
/// direct operator-chain form; they arise only from exists-unnesting and are
/// consumed by semi-join lowering).
pub fn desugar(c: &Comprehension, gen: &mut NameGen) -> BagExpr {
    assert!(
        !matches!(c.monad, Monad::Fold(_)),
        "cannot desugar a fold comprehension to a bag expression"
    );
    let flatten = c.monad == Monad::FlattenBag;
    go(&c.quals, &c.head, flatten, gen)
}

fn go(quals: &[Qual], head: &ScalarExpr, flatten: bool, gen: &mut NameGen) -> BagExpr {
    // Find the first generator; guards before it are generator-independent
    // and are folded into that generator's filter.
    let first_gen = quals
        .iter()
        .position(|q| matches!(q, Qual::Gen(_)))
        .expect("comprehension without a generator");
    let leading_guards: Vec<&ScalarExpr> = quals[..first_gen]
        .iter()
        .map(|q| match q {
            Qual::Guard(g) => g,
            Qual::Gen(_) => unreachable!(),
        })
        .collect();
    let Qual::Gen(g) = &quals[first_gen] else {
        unreachable!()
    };
    assert!(
        g.semi.is_none(),
        "cannot desugar an existential generator; lower it to a semi-join instead"
    );
    let mut src = match &g.source {
        GenSource::Atom(b) => b.clone(),
        GenSource::Comp(inner) => desugar(inner, gen),
    };
    // Guards immediately following this generator (before the next one)
    // filter it; they may reference enclosing generators lexically.
    let mut i = first_gen + 1;
    let mut filters: Vec<ScalarExpr> = leading_guards.into_iter().cloned().collect();
    while i < quals.len() {
        match &quals[i] {
            Qual::Guard(p) => filters.push(p.clone()),
            Qual::Gen(_) => break,
        }
        i += 1;
    }
    if !filters.is_empty() {
        let pred = filters
            .into_iter()
            .reduce(|a, b| a.and(b))
            .expect("non-empty filters");
        src = src.filter(Lambda {
            params: vec![g.var.clone()],
            body: pred,
        });
    }
    let rest = &quals[i..];
    if rest.iter().any(|q| matches!(q, Qual::Gen(_))) {
        src.flat_map(crate::bag_expr::BagLambda {
            param: g.var.clone(),
            body: go(rest, head, flatten, gen),
        })
    } else if flatten {
        let body = match head {
            ScalarExpr::BagOf(b) => (**b).clone(),
            other => BagExpr::OfValue(Box::new(other.clone())),
        };
        src.flat_map(crate::bag_expr::BagLambda {
            param: g.var.clone(),
            body,
        })
    } else if *head == ScalarExpr::var(g.var.clone()) {
        src
    } else {
        src.map(Lambda {
            params: vec![g.var.clone()],
            body: head.clone(),
        })
    }
}

fn substitute_in_qual(q: &Qual, var: &str, replacement: &ScalarExpr) -> Qual {
    match q {
        Qual::Guard(g) => Qual::Guard(g.substitute(var, replacement)),
        Qual::Gen(g) => Qual::Gen(Generator {
            var: g.var.clone(),
            semi: g.semi,
            source: match &g.source {
                GenSource::Atom(b) => GenSource::Atom(b.substitute(var, replacement)),
                GenSource::Comp(c) => GenSource::Comp(Box::new(Comprehension {
                    head: c.head.substitute(var, replacement),
                    quals: c
                        .quals
                        .iter()
                        .map(|q| substitute_in_qual(q, var, replacement))
                        .collect(),
                    monad: c.monad.clone(),
                })),
            },
        }),
    }
}

impl fmt::Display for Comprehension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.monad == Monad::FlattenBag {
            write!(f, "flatten ")?;
        }
        write!(f, "[[ {} | ", self.head)?;
        for (i, q) in self.quals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match q {
                Qual::Gen(g) => {
                    let marker = match g.semi {
                        Some(SemiKind::Exists) => "∃",
                        Some(SemiKind::NotExists) => "∄",
                        None => "",
                    };
                    match &g.source {
                        GenSource::Atom(b) => write!(f, "{}{} ← {}", marker, g.var, b)?,
                        GenSource::Comp(c) => write!(f, "{}{} ← {}", marker, g.var, c)?,
                    }
                }
                Qual::Guard(g) => write!(f, "{g}")?,
            }
        }
        match &self.monad {
            Monad::Bag | Monad::FlattenBag => write!(f, " ]]"),
            Monad::Fold(op) => write!(f, " ]]^fold[{:?}]", op.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshen::freshen_bag;
    use std::collections::HashMap;

    fn fresh(e: &BagExpr) -> (BagExpr, NameGen) {
        let mut gen = NameGen::new();
        let f = freshen_bag(e, &HashMap::new(), &mut gen);
        (f, gen)
    }

    fn atoms_only(c: &Comprehension) -> bool {
        c.quals.iter().all(|q| match q {
            Qual::Gen(g) => matches!(g.source, GenSource::Atom(_)),
            Qual::Guard(_) => true,
        })
    }

    #[test]
    fn resugar_map_produces_single_generator() {
        let e = BagExpr::read("xs").map(Lambda::new(["x"], ScalarExpr::var("x").get(0)));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        assert_eq!(c.monad, Monad::Bag);
        assert_eq!(c.quals.len(), 1);
    }

    #[test]
    fn normalization_fuses_map_chains() {
        // xs.map(f).map(g) should normalize to one comprehension over xs.
        let e = BagExpr::read("xs")
            .map(Lambda::new(
                ["x"],
                ScalarExpr::var("x").add(ScalarExpr::lit(1i64)),
            ))
            .map(Lambda::new(
                ["y"],
                ScalarExpr::var("y").mul(ScalarExpr::lit(2i64)),
            ));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let (n, stats) = normalize(c, NormalizeOpts::default(), &mut gen);
        assert!(stats.fusions >= 1);
        assert!(atoms_only(&n));
        assert_eq!(n.quals.len(), 1, "fused into a single generator: {n}");
        // Head is g(f(x)) = (x + 1) * 2.
        match &n.head {
            ScalarExpr::BinOp(BinOp::Mul, l, _) => {
                assert!(matches!(**l, ScalarExpr::BinOp(BinOp::Add, _, _)))
            }
            other => panic!("expected fused head, got {other:?}"),
        }
    }

    #[test]
    fn normalization_flattens_flat_map_join_shape() {
        // ctrds.flatMap(x => newCtrds.withFilter(y => x.0 == y.0).map(y => x.1 - y.1))
        let inner = BagExpr::var("newCtrds")
            .filter(Lambda::new(
                ["y"],
                ScalarExpr::var("x").get(0).eq(ScalarExpr::var("y").get(0)),
            ))
            .map(Lambda::new(
                ["y"],
                ScalarExpr::var("x").get(1).sub(ScalarExpr::var("y").get(1)),
            ));
        let e = BagExpr::var("ctrds").flat_map(crate::bag_expr::BagLambda::new("x", inner));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let (n, _) = normalize(c, NormalizeOpts::default(), &mut gen);
        assert_eq!(n.monad, Monad::Bag, "flatten eliminated: {n}");
        assert!(atoms_only(&n));
        // Expect exactly two generators and one guard — the paper's
        // [[ dist(x,y) | x ← ctrds, y ← newCtrds, x.id = y.id ]] shape.
        let gens = n.quals.iter().filter(|q| matches!(q, Qual::Gen(_))).count();
        let guards = n
            .quals
            .iter()
            .filter(|q| matches!(q, Qual::Guard(_)))
            .count();
        assert_eq!((gens, guards), (2, 1), "{n}");
    }

    #[test]
    fn exists_guard_is_unnested_to_semi_generator() {
        // emails.withFilter(e => bl.exists(l => l.0 == e.0))
        let e = BagExpr::read("emails").filter(Lambda::new(
            ["e"],
            BagExpr::read("blacklist").exists(Lambda::new(
                ["l"],
                ScalarExpr::var("l").get(0).eq(ScalarExpr::var("e").get(0)),
            )),
        ));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let (n, stats) = normalize(c, NormalizeOpts::default(), &mut gen);
        assert_eq!(stats.exists_unnested, 1);
        let semi_gens: Vec<&Generator> = n
            .quals
            .iter()
            .filter_map(|q| match q {
                Qual::Gen(g) if g.semi == Some(SemiKind::Exists) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(semi_gens.len(), 1, "{n}");
    }

    #[test]
    fn negated_exists_becomes_anti_generator() {
        let e = BagExpr::read("emails").filter(Lambda::new(
            ["e"],
            BagExpr::read("blacklist")
                .exists(Lambda::new(
                    ["l"],
                    ScalarExpr::var("l").get(0).eq(ScalarExpr::var("e").get(0)),
                ))
                .not(),
        ));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let (n, stats) = normalize(c, NormalizeOpts::default(), &mut gen);
        assert_eq!(stats.exists_unnested, 1);
        assert!(n.quals.iter().any(|q| matches!(
            q,
            Qual::Gen(Generator {
                semi: Some(SemiKind::NotExists),
                ..
            })
        )));
    }

    #[test]
    fn correlated_exists_source_is_not_unnested() {
        // xs.filter(x => bagOf(x.1).exists(...)) — the bag depends on x.
        let e = BagExpr::read("xs").filter(Lambda::new(
            ["x"],
            BagExpr::of_value(ScalarExpr::var("x").get(1)).exists(Lambda::new(
                ["y"],
                ScalarExpr::var("y").gt(ScalarExpr::lit(0i64)),
            )),
        ));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let (n, stats) = normalize(c, NormalizeOpts::default(), &mut gen);
        assert_eq!(stats.exists_unnested, 0, "{n}");
    }

    #[test]
    fn exists_unnesting_can_be_disabled() {
        let e = BagExpr::read("emails").filter(Lambda::new(
            ["e"],
            BagExpr::read("blacklist").exists(Lambda::new(
                ["l"],
                ScalarExpr::var("l").eq(ScalarExpr::var("e")),
            )),
        ));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let opts = NormalizeOpts {
            fusion: true,
            unnest_exists: false,
        };
        let (n, stats) = normalize(c, opts, &mut gen);
        assert_eq!(stats.exists_unnested, 0);
        // The exists stays as a guard — it will be evaluated with a
        // broadcast of the blacklist.
        assert!(n
            .quals
            .iter()
            .any(|q| matches!(q, Qual::Guard(ScalarExpr::Fold(_, _)))));
    }

    #[test]
    fn conjunction_guards_are_split() {
        let e = BagExpr::read("xs").filter(Lambda::new(
            ["x"],
            ScalarExpr::var("x")
                .get(0)
                .gt(ScalarExpr::lit(0i64))
                .and(ScalarExpr::var("x").get(1).lt(ScalarExpr::lit(9i64))),
        ));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let (n, _) = normalize(c, NormalizeOpts::default(), &mut gen);
        let guards = n
            .quals
            .iter()
            .filter(|q| matches!(q, Qual::Guard(_)))
            .count();
        assert_eq!(guards, 2);
    }

    #[test]
    fn display_uses_paper_notation() {
        let e = BagExpr::read("xs").map(Lambda::new(["x"], ScalarExpr::var("x")));
        let (e, mut gen) = fresh(&e);
        let c = resugar(&e, &mut gen);
        let s = c.to_string();
        assert!(s.starts_with("[[ "), "{s}");
        assert!(s.contains("←"), "{s}");
    }
}
