//! Physical optimizations over compiled programs (paper, Section 4.4).
//!
//! Both passes exploit the holistic view over driver control flow that deep
//! embedding provides:
//!
//! * **Caching** — dataflow results referenced more than once (in particular
//!   referenced inside a loop while defined outside it) are wrapped in a
//!   [`Plan::Cache`] node. Without it, lazy evaluation re-executes the whole
//!   lineage on every reference — once per loop iteration.
//! * **Partition pulling** — when a join inside a loop consumes a bag defined
//!   outside the loop (through partition-preserving operators), the required
//!   hash partitioning is enforced at the *producer*, before the loop (and
//!   before the cache), so the per-iteration shuffle is paid only once.

use crate::pipeline::{AuxDef, CRValue, CStmt, OptimizationReport};
use crate::plan::Plan;

// ------------------------------------------------------------------ caching

/// Applies the caching heuristic: every bag binding whose *name* is
/// referenced at least twice across the whole program (references inside
/// loops weighted double — they repeat per iteration) is wrapped in a
/// `Cache`. A mutable binding rebound inside a loop counts its readers on
/// every iteration, so iterative state (k-means centroids, PageRank ranks)
/// is materialized per step instead of dragging an ever-deeper lazy lineage.
pub fn apply_caching(body: &mut [CStmt], report: &mut OptimizationReport) {
    let mut names: Vec<String> = Vec::new();
    collect_bound_bag_names(body, &mut names);
    names.sort();
    names.dedup();
    for name in names {
        let weight: usize = body.iter().map(|s| ref_weight(s, &name, 1)).sum();
        if weight >= 2 {
            let mut wrapped = false;
            wrap_binds(body, &name, &mut wrapped);
            if wrapped {
                report.cached.push(name);
            }
        }
    }
}

fn collect_bound_bag_names(body: &[CStmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            CStmt::Bind {
                name,
                value: CRValue::Bag(_),
                ..
            } => out.push(name.clone()),
            CStmt::While { body, .. } | CStmt::ForEach { body, .. } => {
                collect_bound_bag_names(body, out)
            }
            CStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_bound_bag_names(then_branch, out);
                collect_bound_bag_names(else_branch, out);
            }
            _ => {}
        }
    }
}

/// Wraps every bag bind of `name` in a `Cache` marker.
fn wrap_binds(body: &mut [CStmt], name: &str, wrapped: &mut bool) {
    for s in body.iter_mut() {
        match s {
            CStmt::Bind {
                name: n,
                value: CRValue::Bag(plan),
                ..
            } if n == name && !matches!(plan, Plan::Cache { .. }) => {
                let inner = std::mem::replace(plan, Plan::Literal { rows: vec![] });
                *plan = Plan::Cache {
                    input: Box::new(inner),
                };
                *wrapped = true;
            }
            CStmt::While { body, .. } | CStmt::ForEach { body, .. } => {
                wrap_binds(body, name, wrapped)
            }
            CStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                wrap_binds(then_branch, name, wrapped);
                wrap_binds(else_branch, name, wrapped);
            }
            _ => {}
        }
    }
}

/// Weighted reference count of bag `name` in a compiled statement; references
/// inside nested loops are weighted double (they repeat per iteration).
fn ref_weight(s: &CStmt, name: &str, factor: usize) -> usize {
    let plan_refs = |p: &Plan| p.bag_refs().iter().filter(|r| r.as_str() == name).count();
    let aux_refs = |pre: &[AuxDef]| pre.iter().map(|a| plan_refs(&a.plan)).sum::<usize>();
    match s {
        CStmt::Bind { value, .. } => match value {
            CRValue::Bag(p) => factor * plan_refs(p),
            CRValue::Scalar { pre, .. } => factor * aux_refs(pre),
        },
        CStmt::While { pre, body, .. } => {
            let mut n = 2 * factor * aux_refs(pre);
            for s in body {
                n += ref_weight(s, name, 2 * factor);
            }
            n
        }
        CStmt::ForEach { pre, body, .. } => {
            let mut n = factor * aux_refs(pre);
            for s in body {
                n += ref_weight(s, name, 2 * factor);
            }
            n
        }
        CStmt::If {
            pre,
            then_branch,
            else_branch,
            ..
        } => {
            let n = factor * aux_refs(pre);
            // Branches are alternatives; count the heavier one.
            let t: usize = then_branch
                .iter()
                .map(|s| ref_weight(s, name, factor))
                .sum();
            let e: usize = else_branch
                .iter()
                .map(|s| ref_weight(s, name, factor))
                .sum();
            n + t.max(e)
        }
        CStmt::Write { plan, .. } => factor * plan_refs(plan),
        CStmt::StatefulCreate { plan, .. } => factor * plan_refs(plan),
        CStmt::StatefulUpdate { messages, .. } => factor * plan_refs(messages),
    }
}

// -------------------------------------------------------- partition pulling

/// A partitioning requirement discovered at a join inside a loop.
struct PullCandidate {
    /// The producing binding.
    def: String,
    /// The key the consumer joins on (params refer to the def's elements).
    key: crate::expr::Lambda,
}

/// Applies partition pulling: joins inside loops whose inputs reach back
/// (through partition-preserving `Filter`s) to bindings are recorded, and the
/// partitioning is enforced at the binding — inside its `Cache` if present.
pub fn apply_partition_pulling(body: &mut [CStmt], report: &mut OptimizationReport) {
    let mut candidates: Vec<PullCandidate> = Vec::new();
    collect_candidates(body, false, &mut candidates);
    if candidates.is_empty() {
        return;
    }
    enforce(body, &candidates, report);
}

fn collect_candidates(body: &[CStmt], in_loop: bool, out: &mut Vec<PullCandidate>) {
    for s in body {
        match s {
            CStmt::While { pre, body, .. } | CStmt::ForEach { pre, body, .. } => {
                for a in pre {
                    collect_from_plan(&a.plan, true, out);
                }
                collect_candidates(body, true, out);
            }
            CStmt::If {
                pre,
                then_branch,
                else_branch,
                ..
            } => {
                for a in pre {
                    collect_from_plan(&a.plan, in_loop, out);
                }
                collect_candidates(then_branch, in_loop, out);
                collect_candidates(else_branch, in_loop, out);
            }
            CStmt::Bind { value, .. } => match value {
                CRValue::Bag(p) => collect_from_plan(p, in_loop, out),
                CRValue::Scalar { pre, .. } => {
                    for a in pre {
                        collect_from_plan(&a.plan, in_loop, out);
                    }
                }
            },
            CStmt::Write { plan, .. } => collect_from_plan(plan, in_loop, out),
            CStmt::StatefulCreate { plan, .. } => collect_from_plan(plan, in_loop, out),
            CStmt::StatefulUpdate { messages, .. } => collect_from_plan(messages, in_loop, out),
        }
    }
}

fn collect_from_plan(plan: &Plan, in_loop: bool, out: &mut Vec<PullCandidate>) {
    if !in_loop {
        return;
    }
    plan.visit(&mut |p| {
        if let Plan::Join {
            left,
            right,
            lkey,
            rkey,
            ..
        } = p
        {
            for (side, key) in [(left, lkey), (right, rkey)] {
                if let Some(def) = chase_partition_preserving(side) {
                    if !out.iter().any(|c| c.def == def) {
                        out.push(PullCandidate {
                            def,
                            key: key.clone(),
                        });
                    }
                }
            }
        }
    });
}

/// Walks down through partition-preserving operators (filters) to find a
/// driver-bag reference whose elements are exactly the join input's elements.
fn chase_partition_preserving(plan: &Plan) -> Option<String> {
    match plan {
        Plan::Filter { input, .. } => chase_partition_preserving(input),
        Plan::RefBag { name } => Some(name.clone()),
        _ => None,
    }
}

fn enforce(body: &mut [CStmt], candidates: &[PullCandidate], report: &mut OptimizationReport) {
    for s in body.iter_mut() {
        match s {
            CStmt::Bind {
                name,
                value: CRValue::Bag(plan),
                ..
            } => {
                if let Some(c) = candidates.iter().find(|c| &c.def == name) {
                    if insert_repartition(plan, &c.key) {
                        report.partitions_pulled.push(name.clone());
                    }
                }
            }
            CStmt::While { body, .. } | CStmt::ForEach { body, .. } => {
                enforce(body, candidates, report)
            }
            CStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                enforce(then_branch, candidates, report);
                enforce(else_branch, candidates, report);
            }
            _ => {}
        }
    }
}

/// Inserts a `Repartition` beneath the binding's `Cache` (if any), so the
/// shuffled layout is what gets cached. Returns false if one is already
/// enforced.
fn insert_repartition(plan: &mut Plan, key: &crate::expr::Lambda) -> bool {
    match plan {
        Plan::Cache { input } => insert_repartition(input, key),
        Plan::Repartition { .. } => false,
        other => {
            let inner = std::mem::replace(other, Plan::Literal { rows: vec![] });
            *other = Plan::Repartition {
                input: Box::new(inner),
                key: key.clone(),
            };
            true
        }
    }
}
