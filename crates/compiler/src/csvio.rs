//! CSV-backed storage for the dynamic value model (paper, Listing 3 line 5:
//! `read(url, CsvInputFormat[A])` / `write(url, CsvOutputFormat[A])`).
//!
//! Quoted programs read named datasets from a [`Catalog`]; this module loads
//! catalogs from and persists sinks to a simple headerless CSV dialect over
//! [`Value`] rows:
//!
//! * each line is one row; fields are separated by `,` (no quoting — string
//!   fields must not contain commas or newlines);
//! * a row with several fields becomes a `Value::Tuple`; a single field
//!   stays a scalar;
//! * fields parse as `Int`, then `Float`, then `Bool`, then `Str`, with the
//!   empty field as `Null`;
//! * vectors serialize as `;`-separated floats wrapped in `[` `]`.
//!
//! Nested bags are not representable (flatten them before writing) — the
//! same restriction the paper's record formats have.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::interp::Catalog;
use crate::value::{Value, ValueError};

/// Parses one CSV field into a value.
pub fn parse_field(field: &str) -> Value {
    let f = field.trim();
    if f.is_empty() {
        return Value::Null;
    }
    if let Some(inner) = f.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let parts: Result<Vec<f64>, _> = if inner.trim().is_empty() {
            Ok(Vec::new())
        } else {
            inner.split(';').map(|p| p.trim().parse::<f64>()).collect()
        };
        if let Ok(v) = parts {
            return Value::vector(v);
        }
    }
    if let Ok(i) = f.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(x) = f.parse::<f64>() {
        return Value::Float(x);
    }
    match f {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::str(f),
    }
}

/// Parses one CSV line into a row value.
pub fn parse_line(line: &str) -> Value {
    let fields: Vec<Value> = line.split(',').map(parse_field).collect();
    if fields.len() == 1 {
        fields.into_iter().next().expect("one field")
    } else {
        Value::tuple(fields)
    }
}

/// Serializes one value as a CSV field.
pub fn format_field(v: &Value) -> Result<String, ValueError> {
    match v {
        Value::Null => Ok(String::new()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) => Ok(format!("{f:?}")),
        Value::Str(s) => {
            if s.contains(',') || s.contains('\n') {
                Err(ValueError::Unknown(format!(
                    "string field contains a separator: {s:?}"
                )))
            } else {
                Ok(s.to_string())
            }
        }
        Value::Vector(xs) => {
            let mut out = String::from("[");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                let _ = write!(out, "{x:?}");
            }
            out.push(']');
            Ok(out)
        }
        Value::Tuple(_) | Value::Bag(_) => Err(ValueError::type_mismatch("flat field", v)),
    }
}

/// Serializes one row as a CSV line.
pub fn format_line(row: &Value) -> Result<String, ValueError> {
    match row {
        Value::Tuple(fields) => {
            let parts: Result<Vec<String>, _> = fields.iter().map(format_field).collect();
            Ok(parts?.join(","))
        }
        scalar => format_field(scalar),
    }
}

/// Reads a dataset from a CSV file.
pub fn read_rows(path: impl AsRef<Path>) -> Result<Vec<Value>, ValueError> {
    let file = File::open(&path).map_err(|e| ValueError::Unknown(format!("open: {e}")))?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| ValueError::Unknown(format!("read: {e}")))?;
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(&line));
    }
    Ok(out)
}

/// Writes a dataset to a CSV file.
pub fn write_rows(path: impl AsRef<Path>, rows: &[Value]) -> Result<(), ValueError> {
    let file = File::create(&path).map_err(|e| ValueError::Unknown(format!("create: {e}")))?;
    let mut writer = BufWriter::new(file);
    for row in rows {
        writeln!(writer, "{}", format_line(row)?)
            .map_err(|e| ValueError::Unknown(format!("write: {e}")))?;
    }
    writer
        .flush()
        .map_err(|e| ValueError::Unknown(format!("flush: {e}")))
}

/// Loads every `*.csv` file of a directory into a catalog, one dataset per
/// file (named after the file stem).
pub fn load_catalog(dir: impl AsRef<Path>) -> Result<Catalog, ValueError> {
    let mut catalog = Catalog::new();
    let entries =
        std::fs::read_dir(&dir).map_err(|e| ValueError::Unknown(format!("read_dir: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| ValueError::Unknown(format!("entry: {e}")))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("csv") {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| ValueError::Unknown("bad file name".into()))?
                .to_string();
            catalog.insert(name, read_rows(&path)?);
        }
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_round_trips() {
        for v in [
            Value::Int(42),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("hello"),
            Value::Null,
            Value::vector(vec![1.0, -2.25]),
        ] {
            let s = format_field(&v).expect("format");
            assert_eq!(parse_field(&s), v, "field {s:?}");
        }
    }

    #[test]
    fn line_round_trips_tuples() {
        let row = Value::tuple(vec![
            Value::Int(7),
            Value::str("abc"),
            Value::Float(1.5),
            Value::vector(vec![0.5, 0.25]),
        ]);
        let line = format_line(&row).expect("format");
        assert_eq!(parse_line(&line), row);
    }

    #[test]
    fn floats_keep_precision_through_debug_format() {
        let row = Value::Float(0.1 + 0.2);
        let line = format_line(&row).expect("format");
        assert_eq!(parse_line(&line), row);
    }

    #[test]
    fn nested_values_are_rejected() {
        let bag = Value::bag(vec![Value::Int(1)]);
        assert!(format_field(&bag).is_err());
        let nested = Value::tuple(vec![Value::tuple(vec![Value::Int(1)])]);
        assert!(format_line(&nested).is_err());
    }

    #[test]
    fn strings_with_separators_are_rejected() {
        assert!(format_field(&Value::str("a,b")).is_err());
    }

    #[test]
    fn file_and_catalog_round_trip() {
        let dir = std::env::temp_dir().join(format!("emma-csvio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let rows = vec![
            Value::tuple(vec![Value::Int(1), Value::str("x")]),
            Value::tuple(vec![Value::Int(2), Value::str("y")]),
        ];
        write_rows(dir.join("pairs.csv"), &rows).expect("write");
        let back = read_rows(dir.join("pairs.csv")).expect("read");
        assert_eq!(back, rows);
        let catalog = load_catalog(&dir).expect("catalog");
        assert_eq!(catalog.get("pairs").expect("dataset"), &rows);
        std::fs::remove_dir_all(&dir).ok();
    }
}
