//! # emma-compiler — the deep embedding and compiler pipeline
//!
//! This crate is the paper's primary contribution, transplanted to Rust:
//! a *deeply embedded* language for parallel data analysis, compiled
//! holistically through a monad-comprehension intermediate representation.
//!
//! In the Scala original, user code inside `parallelize { … }` brackets is
//! quoted by a macro; here, programs are first-class values — a driver AST
//! ([`program::Program`]) whose bag expressions ([`bag_expr::BagExpr`]) carry
//! analyzable UDFs written in a small scalar-expression language
//! ([`expr::ScalarExpr`]). Every stage of the paper's Figure 1 pipeline then
//! operates exactly as described:
//!
//! 1. **Recovering comprehensions** ([`comprehension`]): MC⁻¹ resugaring of
//!    `map`/`flatMap`/`withFilter`/`fold` chains, single-use inlining, and
//!    normalization (head unnesting, generator fusion, exists-unnesting).
//! 2. **Logical optimization** ([`fusion`]): fold-group fusion via banana
//!    split + fold-build fusion, rewriting `groupBy` to `aggBy`.
//! 3. **Lowering** ([`lower`]): Grust-style combinator rules (Figure 2)
//!    driven by the Figure 3a state machine, producing abstract dataflow
//!    [`plan::Plan`]s.
//! 4. **Physical optimization** ([`physical`]): caching of multiply
//!    referenced bags, partition pulling across loop barriers, broadcast
//!    insertion for unbound driver variables.
//!
//! The pipeline entry point is [`pipeline::parallelize`], which takes a
//! [`program::Program`] plus [`pipeline::OptimizerFlags`] (so each paper
//! experiment can toggle individual optimizations) and produces a
//! [`pipeline::CompiledProgram`] ready for an `emma-engine` runtime, together
//! with an optimization report that reproduces the paper's Table 1.
//!
//! A reference interpreter ([`interp`]) provides the sequential semantics
//! that optimized, distributed execution must preserve.

#![warn(missing_docs)]

pub mod bag_expr;
pub mod compiled;
pub mod comprehension;
pub mod csvio;
pub mod expr;
pub mod freshen;
pub mod fusion;
pub mod interp;
pub mod lower;
pub mod physical;
pub mod physical_pipeline;
pub mod pipeline;
pub mod plan;
pub mod program;
pub mod value;
pub mod vectorized;

pub use bag_expr::{BagExpr, BagLambda};
pub use compiled::{compile_bag_body, compile_lambda, CompiledBag, CompiledEval, Machine};
pub use expr::{BinOp, BuiltinFn, FoldKind, FoldOp, Lambda, ScalarExpr, UnOp};
pub use interp::{Catalog, Interp, RunOutput};
pub use pipeline::{parallelize, CompiledProgram, OptimizationReport, OptimizerFlags};
pub use plan::Plan;
pub use program::{Program, RValue, Stmt};
pub use value::{Value, ValueError};
pub use vectorized::{specialize, BatchConfig, VecStageSpec, VectorPipeline, VectorScratch};
