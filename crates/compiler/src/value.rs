//! The dynamic value model shared by the compiler IR and the engine.
//!
//! Emma programs in this reproduction are *first-class values*: a driver AST
//! over an analyzable expression language (see the crate docs for why this
//! substitutes for Scala-macro quotation). Records flowing through dataflows
//! are dynamic [`Value`]s — tuples of primitives, numeric vectors, and
//! (for nesting) bags of values.
//!
//! `Value` implements total equality and hashing (floats compare by bit
//! pattern, `NaN == NaN`) so values can serve as grouping and join keys, and
//! a total order for `min`/`max`-style folds.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed record value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The absent value (used e.g. for empty-bag `min_by` results).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string (cheap to clone; rows are cloned across operators).
    Str(Arc<str>),
    /// Dense numeric vector (k-means positions, feature vectors).
    Vector(Arc<Vec<f64>>),
    /// Positional tuple / struct.
    Tuple(Arc<Vec<Value>>),
    /// A nested bag of values (group values, driver-side sequences).
    Bag(Arc<Vec<Value>>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for tuples.
    pub fn tuple(fields: impl Into<Vec<Value>>) -> Value {
        Value::Tuple(Arc::new(fields.into()))
    }

    /// Convenience constructor for vectors.
    pub fn vector(v: impl Into<Vec<f64>>) -> Value {
        Value::Vector(Arc::new(v.into()))
    }

    /// Convenience constructor for bags.
    pub fn bag(v: impl Into<Vec<Value>>) -> Value {
        Value::Bag(Arc::new(v.into()))
    }

    /// Positional field access on tuples.
    pub fn field(&self, i: usize) -> Result<&Value, ValueError> {
        match self {
            Value::Tuple(fs) => fs.get(i).ok_or_else(|| ValueError::FieldOutOfRange {
                index: i,
                arity: fs.len(),
            }),
            other => Err(ValueError::type_mismatch("Tuple", other)),
        }
    }

    /// Extracts a bool.
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::type_mismatch("Bool", other)),
        }
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ValueError::type_mismatch("Int", other)),
        }
    }

    /// Extracts a float, coercing integers.
    pub fn as_float(&self) -> Result<f64, ValueError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(ValueError::type_mismatch("Float", other)),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str, ValueError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ValueError::type_mismatch("Str", other)),
        }
    }

    /// Extracts a vector.
    pub fn as_vector(&self) -> Result<&[f64], ValueError> {
        match self {
            Value::Vector(v) => Ok(v),
            other => Err(ValueError::type_mismatch("Vector", other)),
        }
    }

    /// Extracts the elements of a nested bag.
    pub fn as_bag(&self) -> Result<&[Value], ValueError> {
        match self {
            Value::Bag(b) => Ok(b),
            other => Err(ValueError::type_mismatch("Bag", other)),
        }
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for the value's runtime type (for diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
            Value::Vector(_) => "Vector",
            Value::Tuple(_) => "Tuple",
            Value::Bag(_) => "Bag",
        }
    }

    /// Approximate serialized size in bytes — the unit the engine's cost
    /// model charges for shuffles, broadcasts, and storage.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 8 + s.len() as u64,
            Value::Vector(v) => 8 + 8 * v.len() as u64,
            Value::Tuple(fs) => 8 + fs.iter().map(Value::approx_bytes).sum::<u64>(),
            Value::Bag(b) => 8 + b.iter().map(Value::approx_bytes).sum::<u64>(),
        }
    }
}

/// Errors raised by dynamic value operations and expression evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueError {
    /// A value had an unexpected runtime type.
    TypeMismatch {
        /// Expected type name.
        expected: &'static str,
        /// Found type name.
        found: &'static str,
    },
    /// Tuple field index out of range.
    FieldOutOfRange {
        /// Requested index.
        index: usize,
        /// Tuple arity.
        arity: usize,
    },
    /// An unbound variable was referenced during evaluation.
    UnboundVariable(String),
    /// Division by zero or a similar arithmetic fault.
    Arithmetic(String),
    /// A named dataset or UDF was not found.
    Unknown(String),
}

impl ValueError {
    /// Builds a type-mismatch error from the found value.
    pub fn type_mismatch(expected: &'static str, found: &Value) -> Self {
        ValueError::TypeMismatch {
            expected,
            found: found.type_name(),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::FieldOutOfRange { index, arity } => {
                write!(f, "field {index} out of range for tuple of arity {arity}")
            }
            ValueError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            ValueError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            ValueError::Unknown(what) => write!(f, "unknown: {what}"),
        }
    }
}

impl std::error::Error for ValueError {}

// ---------------------------------------------------------------- equality

fn float_key(f: f64) -> u64 {
    // Canonicalize NaNs and signed zero so Eq/Hash agree.
    if f.is_nan() {
        u64::MAX
    } else if f == 0.0 {
        0
    } else {
        f.to_bits()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => float_key(*a) == float_key(*b),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                float_key(*a as f64) == float_key(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Vector(a), Value::Vector(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| float_key(*x) == float_key(*y))
            }
            (Value::Tuple(a), Value::Tuple(b)) => a == b,
            (Value::Bag(a), Value::Bag(b)) => {
                // Bags compare as multisets.
                if a.len() != b.len() {
                    return false;
                }
                let mut counts: std::collections::HashMap<&Value, i64> =
                    std::collections::HashMap::new();
                for v in a.iter() {
                    *counts.entry(v).or_insert(0) += 1;
                }
                for v in b.iter() {
                    match counts.get_mut(v) {
                        Some(n) => *n -= 1,
                        None => return false,
                    }
                }
                counts.values().all(|n| *n == 0)
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equally.
            Value::Int(i) => {
                2u8.hash(state);
                float_key(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                float_key(*f).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Vector(v) => {
                4u8.hash(state);
                for f in v.iter() {
                    float_key(*f).hash(state);
                }
            }
            Value::Tuple(fs) => {
                5u8.hash(state);
                for f in fs.iter() {
                    f.hash(state);
                }
            }
            Value::Bag(b) => {
                // Order-independent hash: combine element hashes commutatively.
                6u8.hash(state);
                let mut acc: u64 = 0;
                for v in b.iter() {
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    v.hash(&mut h);
                    acc = acc.wrapping_add(h.finish());
                }
                acc.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Vector(_) => 4,
                Value::Tuple(_) => 5,
                Value::Bag(_) => 6,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Vector(a), Value::Vector(b)) => a.len().cmp(&b.len()).then_with(|| {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                Ordering::Equal
            }),
            (Value::Tuple(a), Value::Tuple(b)) => a.cmp(b),
            (Value::Bag(a), Value::Bag(b)) => {
                let mut sa: Vec<&Value> = a.iter().collect();
                let mut sb: Vec<&Value> = b.iter().collect();
                sa.sort();
                sb.sort();
                sa.cmp(&sb)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x:.4}")?;
                }
                write!(f, "]")
            }
            Value::Tuple(fs) => {
                write!(f, "(")?;
                for (i, v) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Bag(b) => {
                write!(f, "{{{{")?;
                for (i, v) in b.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_type_equality_is_hash_consistent() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_equals_nan() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn signed_zero_is_canonical() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn bags_compare_as_multisets() {
        let a = Value::bag(vec![Value::Int(1), Value::Int(2), Value::Int(2)]);
        let b = Value::bag(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        let c = Value::bag(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(a, c);
    }

    #[test]
    fn tuple_field_access() {
        let t = Value::tuple(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.field(0).unwrap(), &Value::Int(1));
        assert!(matches!(
            t.field(5),
            Err(ValueError::FieldOutOfRange { index: 5, arity: 2 })
        ));
        assert!(Value::Int(3).field(0).is_err());
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [
            Value::Float(2.5),
            Value::Int(1),
            Value::Null,
            Value::str("a"),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(1));
    }

    #[test]
    fn approx_bytes_is_monotone_in_content() {
        let small = Value::tuple(vec![Value::Int(1)]);
        let big = Value::tuple(vec![Value::Int(1), Value::str("hello world")]);
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn display_forms() {
        let t = Value::tuple(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "(1, x)");
        assert_eq!(Value::bag(vec![Value::Int(1)]).to_string(), "{{1}}");
    }
}
