//! Property-based tests of the dynamic value model: total order laws,
//! hash/equality consistency (values serve as grouping and join keys), and
//! byte-accounting monotonicity.

use emma_compiler::value::Value;
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only in the random pool; NaN is tested separately.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::str),
        prop::collection::vec(-1e6f64..1e6, 0..4).prop_map(Value::vector),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::tuple),
            prop::collection::vec(inner, 0..4).prop_map(Value::bag),
        ]
    })
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn equality_implies_equal_hashes(a in value(), b in value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn ordering_is_total_and_consistent(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
                prop_assert_eq!(&a, &b, "Equal ordering must mean equality");
            }
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Sorting never panics and is stable under resort.
        let mut v1 = vec![a.clone(), b.clone(), c.clone()];
        v1.sort();
        let mut v2 = v1.clone();
        v2.sort();
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn bag_equality_is_order_insensitive(xs in prop::collection::vec(value(), 0..6)) {
        let forward = Value::bag(xs.clone());
        let mut rev = xs;
        rev.reverse();
        let backward = Value::bag(rev);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(hash_of(&forward), hash_of(&backward));
    }

    #[test]
    fn tuples_are_order_sensitive(a in value(), b in value()) {
        let ab = Value::tuple(vec![a.clone(), b.clone()]);
        let ba = Value::tuple(vec![b.clone(), a.clone()]);
        prop_assert_eq!(ab == ba, a == b);
    }

    #[test]
    fn approx_bytes_grows_with_containers(xs in prop::collection::vec(value(), 1..5)) {
        let whole = Value::tuple(xs.clone());
        let parts: u64 = xs.iter().map(Value::approx_bytes).sum();
        prop_assert!(whole.approx_bytes() >= parts);
        prop_assert!(whole.approx_bytes() > 0);
    }

    #[test]
    fn int_float_coercion_is_symmetric(i in -1_000_000i64..1_000_000) {
        let int = Value::Int(i);
        let float = Value::Float(i as f64);
        prop_assert_eq!(&int, &float);
        prop_assert_eq!(hash_of(&int), hash_of(&float));
        prop_assert_eq!(int.cmp(&float), std::cmp::Ordering::Equal);
    }
}

#[test]
fn nan_is_a_normal_citizen() {
    let nan = Value::Float(f64::NAN);
    assert_eq!(nan, Value::Float(f64::NAN));
    assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
    // Sorting a vector containing NaN terminates and is deterministic.
    let mut v = [Value::Float(1.0), nan.clone(), Value::Float(-1.0)];
    v.sort();
    assert_eq!(v.len(), 3);
}
