//! Property-based semantics-preservation tests for the comprehension
//! pipeline: for randomly generated operator chains `e`,
//! `desugar(normalize(resugar(e)))` must be observationally equal to `e`
//! under the reference interpreter, and fold-group fusion must never change
//! results.

use std::collections::HashMap;

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::comprehension::{desugar, normalize, resugar, NormalizeOpts};
use emma_compiler::expr::{FoldOp, Lambda, ScalarExpr};
use emma_compiler::freshen::{freshen_bag, NameGen};
use emma_compiler::fusion::fuse_fold_group;
use emma_compiler::interp::{eval_bag, Catalog, Env};
use emma_compiler::value::Value;
use proptest::prelude::*;

/// The catalog both sides evaluate against: two tables of `(Int, Int)` rows.
fn catalog() -> Catalog {
    let rows = |seed: i64, n: i64| -> Vec<Value> {
        (0..n)
            .map(|i| {
                Value::tuple(vec![
                    Value::Int((i * seed + 3) % 7),
                    Value::Int(i * (seed + 1) % 11),
                ])
            })
            .collect()
    };
    Catalog::new().with("a", rows(2, 23)).with("b", rows(5, 17))
}

/// A small strategy language for scalar expressions over a tuple-typed
/// variable `v` (fields 0 and 1).
fn scalar_over(v: &'static str) -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        Just(ScalarExpr::var(v).get(0)),
        Just(ScalarExpr::var(v).get(1)),
        (-4i64..5).prop_map(ScalarExpr::lit),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner, 0..3usize).prop_map(|(l, r, op)| match op {
            0 => l.add(r),
            1 => l.mul(r),
            _ => l.sub(r),
        })
    })
}

fn predicate_over(v: &'static str) -> impl Strategy<Value = ScalarExpr> {
    (scalar_over(v), scalar_over(v), 0..4usize).prop_map(|(l, r, op)| match op {
        0 => l.lt(r),
        1 => l.eq(r),
        2 => l.ge(r),
        _ => l.ne(r),
    })
}

/// Random operator chains (the "comprehendable terms" of Section 4.1):
/// maps, filters, and flatMap-joins over the two tables.
fn chain() -> impl Strategy<Value = BagExpr> {
    let source = prop_oneof![Just(BagExpr::read("a")), Just(BagExpr::read("b"))];
    source.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            // map to a fresh pair
            (inner.clone(), scalar_over("v"), scalar_over("v"))
                .prop_map(|(b, x, y)| { b.map(Lambda::new(["v"], ScalarExpr::Tuple(vec![x, y]))) }),
            // filter
            (inner.clone(), predicate_over("v")).prop_map(|(b, p)| b.filter(Lambda::new(["v"], p))),
            // flatMap join against table b on field 0
            inner.clone().prop_map(|b| {
                b.flat_map(BagLambda::new(
                    "o",
                    BagExpr::read("b")
                        .filter(Lambda::new(
                            ["i"],
                            ScalarExpr::var("o").get(0).eq(ScalarExpr::var("i").get(0)),
                        ))
                        .map(Lambda::new(
                            ["i"],
                            ScalarExpr::Tuple(vec![
                                ScalarExpr::var("o").get(1),
                                ScalarExpr::var("i").get(1),
                            ]),
                        )),
                ))
            }),
            // exists-filter against table b (kept as a guard: desugar cannot
            // reify semi-joins, so the round trip runs without exists
            // unnesting — the engine tests cover that path)
            (inner, predicate_over("l")).prop_map(|(b, p)| {
                b.filter(Lambda::new(
                    ["v"],
                    BagExpr::read("b").exists(Lambda::new(
                        ["l"],
                        p.and(ScalarExpr::var("l").get(0).eq(ScalarExpr::var("v").get(0))),
                    )),
                ))
            }),
        ]
    })
}

fn eval(e: &BagExpr, cat: &Catalog) -> Vec<Value> {
    let base = HashMap::new();
    let mut env = Env::new(&base);
    eval_bag(e, &mut env, cat).expect("evaluation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalization_roundtrip_preserves_semantics(e in chain()) {
        let cat = catalog();
        let mut gen = NameGen::new();
        let e = freshen_bag(&e, &HashMap::new(), &mut gen);
        let before = eval(&e, &cat);

        let comp = resugar(&e, &mut gen);
        let opts = NormalizeOpts { fusion: true, unnest_exists: false };
        let (normalized, _) = normalize(comp, opts, &mut gen);
        let reified = desugar(&normalized, &mut gen);
        let after = eval(&reified, &cat);

        prop_assert_eq!(Value::bag(before), Value::bag(after));
    }

    #[test]
    fn fusion_preserves_semantics_on_random_chains(
        e in chain(),
        key_field in 0usize..2,
        agg_field in 0usize..2,
    ) {
        // Wrap an arbitrary chain in groupBy + (sum, count) folds and check
        // fold-group fusion is observation-preserving.
        let cat = catalog();
        let grouped = e
            .group_by(Lambda::new(["x"], ScalarExpr::var("x").get(key_field)))
            .map(Lambda::new(
                ["g"],
                ScalarExpr::Tuple(vec![
                    ScalarExpr::var("g").get(0),
                    BagExpr::of_value(ScalarExpr::var("g").get(1))
                        .map(Lambda::new(["v"], ScalarExpr::var("v").get(agg_field)))
                        .fold(FoldOp::custom(
                            ScalarExpr::lit(0i64),
                            Lambda::new(["x"], ScalarExpr::var("x")),
                            Lambda::new(
                                ["p", "q"],
                                ScalarExpr::var("p").add(ScalarExpr::var("q")),
                            ),
                        )),
                    BagExpr::of_value(ScalarExpr::var("g").get(1)).count(),
                ]),
            ));
        let mut gen = NameGen::new();
        let grouped = freshen_bag(&grouped, &HashMap::new(), &mut gen);
        let before = eval(&grouped, &cat);

        let comp = resugar(&grouped, &mut gen);
        let opts = NormalizeOpts { fusion: true, unnest_exists: false };
        let (mut normalized, _) = normalize(comp, opts, &mut gen);
        let fused = fuse_fold_group(&mut normalized, &mut gen);
        prop_assert!(fused >= 1, "fusion should fire on this shape");
        let reified = desugar(&normalized, &mut gen);
        let after = eval(&reified, &cat);

        prop_assert_eq!(Value::bag(before), Value::bag(after));
    }

    #[test]
    fn freshening_is_observation_preserving(e in chain()) {
        let cat = catalog();
        let before = eval(&e, &cat);
        let mut gen = NameGen::new();
        let fresh = freshen_bag(&e, &HashMap::new(), &mut gen);
        let after = eval(&fresh, &cat);
        prop_assert_eq!(Value::bag(before), Value::bag(after));
    }
}
