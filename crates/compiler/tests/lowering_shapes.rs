//! Structural tests of the combinator lowering (paper, Fig. 2/3a): the
//! rules must produce the expected operator shapes — filters pushed below
//! joins, equi-joins preferred to cross products, dependent generators as
//! flatMaps, existentials as semi-/anti-joins.

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::expr::{FoldOp, Lambda, ScalarExpr};
use emma_compiler::pipeline::{parallelize, CStmt, OptimizerFlags};
use emma_compiler::plan::{JoinKind, Plan};
use emma_compiler::program::{Program, Stmt};

fn compile_write(bag: BagExpr, flags: &OptimizerFlags) -> Plan {
    let p = Program::new(vec![Stmt::write("out", bag)]);
    let compiled = parallelize(&p, flags);
    let CStmt::Write { plan, .. } = &compiled.body[0] else {
        panic!("expected a write statement");
    };
    plan.clone()
}

fn var(n: &str) -> ScalarExpr {
    ScalarExpr::var(n)
}

#[test]
fn filters_are_pushed_below_joins() {
    // for (a <- A; b <- B; if a.1 > 3; if b.1 < 7; if a.0 == b.0) yield …
    let inner = BagExpr::read("B")
        .filter(Lambda::new(["b"], var("a").get(0).eq(var("b").get(0))))
        .filter(Lambda::new(
            ["b"],
            var("b").get(1).lt(ScalarExpr::lit(7i64)),
        ))
        .map(Lambda::new(["b"], var("b").get(1)));
    let e = BagExpr::read("A")
        .filter(Lambda::new(
            ["a"],
            var("a").get(1).gt(ScalarExpr::lit(3i64)),
        ))
        .flat_map(BagLambda::new("a", inner));
    let plan = compile_write(e, &OptimizerFlags::all());
    assert_eq!(plan.count_ops("Join"), 1, "{plan}");
    // Both single-side filters sit below the join, one per side.
    let mut filters_below_join = 0;
    plan.visit(&mut |p| {
        if let Plan::Join { left, right, .. } = p {
            filters_below_join = left.count_ops("Filter") + right.count_ops("Filter");
        }
    });
    assert_eq!(filters_below_join, 2, "{plan}");
    // No cross products.
    assert_eq!(plan.count_ops("Cross"), 0, "{plan}");
}

#[test]
fn unrelated_generators_fall_back_to_cross() {
    // for (a <- A; b <- B) yield (a, b) — no join predicate.
    let e = BagExpr::read("A").flat_map(BagLambda::new(
        "a",
        BagExpr::read("B").map(Lambda::new(
            ["b"],
            ScalarExpr::Tuple(vec![var("a"), var("b")]),
        )),
    ));
    let plan = compile_write(e, &OptimizerFlags::all());
    assert_eq!(plan.count_ops("Cross"), 1, "{plan}");
    assert_eq!(plan.count_ops("Join"), 0, "{plan}");
}

#[test]
fn dependent_generator_lowers_to_flat_map() {
    // for (v <- V; n <- v.1) yield (n, v.0) — n ranges over v's own bag.
    let e = BagExpr::read("V").flat_map(BagLambda::new(
        "v",
        BagExpr::of_value(var("v").get(1)).map(Lambda::new(
            ["n"],
            ScalarExpr::Tuple(vec![var("n"), var("v").get(0)]),
        )),
    ));
    let plan = compile_write(e, &OptimizerFlags::all());
    assert_eq!(plan.count_ops("FlatMap"), 1, "{plan}");
    assert_eq!(plan.count_ops("Cross"), 0, "{plan}");
    assert_eq!(plan.count_ops("Join"), 0, "{plan}");
}

#[test]
fn exists_lowers_to_left_semi_join() {
    let e = BagExpr::read("A").filter(Lambda::new(
        ["a"],
        BagExpr::read("B").exists(Lambda::new(["b"], var("b").get(0).eq(var("a").get(0)))),
    ));
    let plan = compile_write(e, &OptimizerFlags::all());
    let mut kinds = Vec::new();
    plan.visit(&mut |p| {
        if let Plan::Join { kind, .. } = p {
            kinds.push(*kind);
        }
    });
    assert_eq!(kinds, vec![JoinKind::LeftSemi], "{plan}");
}

#[test]
fn negated_exists_lowers_to_left_anti_join() {
    let e = BagExpr::read("A").filter(Lambda::new(
        ["a"],
        BagExpr::read("B")
            .exists(Lambda::new(["b"], var("b").get(0).eq(var("a").get(0))))
            .not(),
    ));
    let plan = compile_write(e, &OptimizerFlags::all());
    let mut kinds = Vec::new();
    plan.visit(&mut |p| {
        if let Plan::Join { kind, .. } = p {
            kinds.push(*kind);
        }
    });
    assert_eq!(kinds, vec![JoinKind::LeftAnti], "{plan}");
}

#[test]
fn exists_with_non_equi_conjunct_keeps_it_as_residual() {
    // exists(b => b.0 == a.0 && b.1 < a.1): the eq conjunct becomes the key,
    // the inequality rides along as the join residual.
    let e = BagExpr::read("A").filter(Lambda::new(
        ["a"],
        BagExpr::read("B").exists(Lambda::new(
            ["b"],
            var("b")
                .get(0)
                .eq(var("a").get(0))
                .and(var("b").get(1).lt(var("a").get(1))),
        )),
    ));
    let plan = compile_write(e, &OptimizerFlags::all());
    let mut found = false;
    plan.visit(&mut |p| {
        if let Plan::Join { kind, residual, .. } = p {
            assert_eq!(*kind, JoinKind::LeftSemi);
            assert!(residual.is_some(), "non-equi conjunct must be residual");
            found = true;
        }
    });
    assert!(found, "{plan}");
}

#[test]
fn without_normalization_chains_stay_unfused() {
    let e = BagExpr::read("A")
        .map(Lambda::new(["x"], var("x").get(0)))
        .map(Lambda::new(["y"], var("y").add(ScalarExpr::lit(1i64))))
        .filter(Lambda::new(["z"], var("z").gt(ScalarExpr::lit(0i64))));
    let unfused = compile_write(e.clone(), &OptimizerFlags::none());
    assert_eq!(unfused.count_ops("Map"), 2, "{unfused}");
    let fused = compile_write(e, &OptimizerFlags::all());
    // Fusion collapses the chain into a single map (+ filter pushed down).
    assert_eq!(fused.count_ops("Map"), 1, "{fused}");
}

#[test]
fn fold_of_comprehension_lowers_to_fold_sink() {
    // (for (x <- A; if x.0 > 2) yield x.1).sum() as a driver scalar.
    let sum = BagExpr::read("A")
        .filter(Lambda::new(
            ["x"],
            var("x").get(0).gt(ScalarExpr::lit(2i64)),
        ))
        .map(Lambda::new(["x"], var("x").get(1)))
        .fold(FoldOp::sum());
    let program = Program::new(vec![Stmt::val("total", sum)]);
    let compiled = parallelize(&program, &OptimizerFlags::all());
    let CStmt::Bind { value, .. } = &compiled.body[0] else {
        panic!("expected a bind");
    };
    let emma_compiler::pipeline::CRValue::Scalar { pre, expr } = value else {
        panic!("scalar rvalue expected");
    };
    assert_eq!(pre.len(), 1, "one extracted dataflow");
    assert_eq!(pre[0].plan.count_ops("Fold"), 1, "{}", pre[0].plan);
    // The residual expression is just the thunk variable.
    assert!(matches!(expr, ScalarExpr::Var(_)));
}

#[test]
fn set_operators_lower_structurally() {
    let e = BagExpr::read("A")
        .plus(BagExpr::read("B"))
        .minus(BagExpr::read("C"))
        .distinct();
    let plan = compile_write(e, &OptimizerFlags::all());
    assert_eq!(plan.count_ops("Plus"), 1);
    assert_eq!(plan.count_ops("Minus"), 1);
    assert_eq!(plan.count_ops("Distinct"), 1);
}

#[test]
fn three_way_join_chains_two_joins() {
    // for (a <- A; b <- B; c <- C; if a.0 == b.0; if b.1 == c.0) yield …
    let innermost = BagExpr::read("C")
        .filter(Lambda::new(["c"], var("b").get(1).eq(var("c").get(0))))
        .map(Lambda::new(
            ["c"],
            ScalarExpr::Tuple(vec![var("a").get(1), var("b").get(1), var("c").get(1)]),
        ));
    let middle = BagExpr::read("B")
        .filter(Lambda::new(["b"], var("a").get(0).eq(var("b").get(0))))
        .flat_map(BagLambda::new("b", innermost));
    let e = BagExpr::read("A").flat_map(BagLambda::new("a", middle));
    let plan = compile_write(e, &OptimizerFlags::all());
    assert_eq!(plan.count_ops("Join"), 2, "{plan}");
    assert_eq!(plan.count_ops("Cross"), 0, "{plan}");
}

#[test]
fn cache_nodes_wrap_only_multiply_referenced_bindings() {
    let program = Program::new(vec![
        Stmt::val("once", BagExpr::read("A").map(Lambda::new(["x"], var("x")))),
        Stmt::val(
            "twice",
            BagExpr::read("B").map(Lambda::new(["x"], var("x"))),
        ),
        Stmt::write("o1", BagExpr::var("twice")),
        Stmt::write(
            "o2",
            BagExpr::var("twice").map(Lambda::new(["x"], var("x"))),
        ),
        Stmt::write("o3", BagExpr::var("once")),
    ]);
    let compiled = parallelize(&program, &OptimizerFlags::all().with_inlining(false));
    for stmt in &compiled.body {
        if let CStmt::Bind { name, value, .. } = stmt {
            let emma_compiler::pipeline::CRValue::Bag(plan) = value else {
                continue;
            };
            if name == "twice" {
                assert!(matches!(plan, Plan::Cache { .. }), "twice must be cached");
            }
            if name == "once" {
                assert!(
                    !matches!(plan, Plan::Cache { .. }),
                    "once must not be cached"
                );
            }
        }
    }
    assert!(compiled.report.cached.contains(&"twice".to_string()));
}

#[test]
fn repartition_lands_inside_the_cache() {
    // A join inside a loop over two cached defs: Cache { Repartition { … } }.
    let join_in_loop = BagExpr::var("left").flat_map(BagLambda::new(
        "l",
        BagExpr::var("right")
            .filter(Lambda::new(["r"], var("l").get(0).eq(var("r").get(0))))
            .map(Lambda::new(["r"], var("r").get(1))),
    ));
    let program = Program::new(vec![
        Stmt::val("left", BagExpr::read("A").map(Lambda::new(["x"], var("x")))),
        Stmt::val(
            "right",
            BagExpr::read("B").map(Lambda::new(["x"], var("x"))),
        ),
        Stmt::var("i", ScalarExpr::lit(0i64)),
        Stmt::while_loop(
            var("i").lt(ScalarExpr::lit(3i64)),
            vec![
                Stmt::val("j", join_in_loop.count()),
                Stmt::assign("i", var("i").add(ScalarExpr::lit(1i64))),
            ],
        ),
    ]);
    let compiled = parallelize(&program, &OptimizerFlags::all());
    let mut shapes = 0;
    for stmt in &compiled.body {
        if let CStmt::Bind {
            value: emma_compiler::pipeline::CRValue::Bag(Plan::Cache { input }),
            ..
        } = stmt
        {
            if matches!(**input, Plan::Repartition { .. }) {
                shapes += 1;
            }
        }
    }
    assert_eq!(shapes, 2, "both join inputs get Cache{{Repartition}}");
    assert_eq!(compiled.report.partitions_pulled.len(), 2);
}
