//! Differential property tests across all three evaluation tiers: the
//! slot-based compiled evaluators ([`emma_compiler::compiled`]) must agree
//! with the reference interpreter ([`emma_compiler::interp`]) on *every*
//! expression — same `Value` on success, same `ValueError` on failure — and
//! the vectorized batch tier ([`emma_compiler::vectorized`]) must agree
//! with the scalar compiled tier on every batch it accepts. The interpreter
//! is the executable specification; this suite throws randomly generated
//! (and mostly ill-typed) expression trees at the tiers and demands
//! bit-for-bit equal `Result`s, covering the error paths hand-written
//! tests rarely reach: type mismatches, division by zero, out-of-range
//! field access, unbound variables, and shadowing through fold binders.
//! For the vectorized tier the contract is *soundness*: a batch either
//! evaluates columnar-exactly (identical rows, identical per-stage counts)
//! or aborts with its outputs untouched so the caller can replay it
//! row-at-a-time — reproducing the first error in evaluation order.

use std::collections::HashMap;

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::compiled::{compile_bag_body, compile_lambda, Machine};
use emma_compiler::expr::{BuiltinFn, FoldOp, Lambda, ScalarExpr};
use emma_compiler::interp::{self, Catalog, Env};
use emma_compiler::value::{Value, ValueError};
use emma_compiler::vectorized::{specialize, specialize_sampled, VecStageSpec};
use proptest::prelude::*;

#[path = "../../../tests/common/string_exprs.rs"]
mod string_exprs;

/// Variable pool the generator draws from. `x`/`y` are lambda parameters,
/// `b0`/`b1` come from the broadcast base scope, `e` is only ever bound by a
/// generated fold binder (unbound elsewhere), and `miss` is never bound —
/// so both unbound-variable handling and shadowing get exercised.
const VARS: [&str; 6] = ["x", "y", "b0", "b1", "e", "miss"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-8i64..=8).prop_map(Value::Int),
        prop_oneof![
            Just(-2.5f64),
            Just(0.0f64),
            Just(1.5f64),
            Just(4.0f64),
            Just(9.0f64)
        ]
        .prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::str),
        prop::collection::vec((-4i64..=4).prop_map(Value::Int), 0..3).prop_map(Value::tuple),
    ]
}

fn leaf_strategy() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        value_strategy().prop_map(ScalarExpr::lit),
        (0usize..VARS.len()).prop_map(|i| ScalarExpr::var(VARS[i])),
    ]
}

/// A fold whose input bag, binder lambda, and aggregate are all drawn from
/// generated parts. The binder is named `e`, shadowing any outer `e`.
fn fold_strategy(inner: BoxedStrategy<ScalarExpr>) -> impl Strategy<Value = ScalarExpr> {
    let bag = prop_oneof![
        prop::collection::vec((-5i64..=5).prop_map(Value::Int), 0..4).prop_map(BagExpr::values),
        Just(BagExpr::Ref { name: "b0".into() }),
        Just(BagExpr::Ref {
            name: "miss".into()
        }),
    ];
    (bag, inner.clone(), inner, 0u8..4).prop_map(|(bag, body, pred, which)| match which {
        0 => bag.map(Lambda::new(["e"], body)).fold(FoldOp::sum()),
        1 => bag.filter(Lambda::new(["e"], pred)).fold(FoldOp::count()),
        2 => bag
            .flat_map(BagLambda::new("e", BagExpr::of_value(body)))
            .fold(FoldOp::max()),
        _ => ScalarExpr::BagOf(Box::new(bag.map(Lambda::new(["e"], body)).distinct())),
    })
}

fn expr_strategy() -> BoxedStrategy<ScalarExpr> {
    leaf_strategy().prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            // Binary operators, including the ones with error cases.
            (inner.clone(), inner.clone(), 0u8..13).prop_map(|(a, b, op)| match op {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                3 => a.div(b),
                4 => a.rem(b),
                5 => a.eq(b),
                6 => a.ne(b),
                7 => a.lt(b),
                8 => a.le(b),
                9 => a.gt(b),
                10 => a.ge(b),
                11 => a.and(b),
                _ => a.or(b),
            }),
            inner.clone().prop_map(|a| a.not()),
            (inner.clone(), 0usize..3).prop_map(|(a, i)| a.get(i)),
            (inner.clone(), 0u8..4).prop_map(|(a, f)| match f {
                0 => ScalarExpr::call(BuiltinFn::Abs, vec![a]),
                1 => ScalarExpr::call(BuiltinFn::Sqrt, vec![a]),
                2 => ScalarExpr::call(BuiltinFn::StrLen, vec![a]),
                _ => ScalarExpr::call(BuiltinFn::HashOf, vec![a]),
            }),
            (inner.clone(), inner.clone(), 0u8..3).prop_map(|(a, b, f)| match f {
                0 => ScalarExpr::call(BuiltinFn::MinOf, vec![a, b]),
                1 => ScalarExpr::call(BuiltinFn::MaxOf, vec![a, b]),
                _ => ScalarExpr::call(BuiltinFn::StrContains, vec![a, b]),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| ScalarExpr::If(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            prop::collection::vec(inner.clone(), 0..3).prop_map(ScalarExpr::Tuple),
            fold_strategy(inner),
        ]
    })
}

fn base_scope() -> HashMap<String, Value> {
    let mut base = HashMap::new();
    base.insert(
        "b0".to_string(),
        Value::bag(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
    );
    base.insert("b1".to_string(), Value::Int(7));
    base
}

/// Evaluates `lam` on `args` through both tiers and asserts the full
/// `Result<Value, ValueError>` is identical.
fn assert_tiers_agree(lam: &Lambda, args: &[Value]) -> Result<(), TestCaseError> {
    let base = base_scope();
    let catalog = Catalog::new().with("xs", (0..6).map(Value::Int).collect::<Vec<_>>());

    let mut env = Env::new(&base);
    let want: Result<Value, ValueError> = interp::eval_lambda(lam, args, &mut env, &catalog);

    let compiled = compile_lambda(lam);
    let caps = compiled.bind(&base);
    let mut m = Machine::new();
    let got = compiled.eval(args, &caps, &mut m, &catalog);

    prop_assert_eq!(&want, &got, "tier divergence on {:?}", lam);

    // Machines are reused across rows by the engine: a second evaluation on
    // the same machine must not be affected by leftover state.
    let again = compiled.eval(args, &caps, &mut m, &catalog);
    prop_assert_eq!(&want, &again, "machine reuse divergence on {:?}", lam);
    Ok(())
}

/// Runs a single Map/Filter stage over `rows` through the vectorized tier
/// (when it specializes on the first row) and checks its soundness contract
/// against the scalar compiled tier:
///
/// * `run_batch` returned `true` → every row's scalar evaluation is `Ok`,
///   the batch output reproduces the scalar results bit-for-bit, and the
///   per-stage counts equal what the scalar loop would have counted;
/// * `run_batch` returned `false` → `counts` and `out` are untouched, so
///   the caller's row-at-a-time replay starts from a clean slate.
///
/// Also re-runs the same batch on the same scratch, since the engine reuses
/// scratch buffers across batches within a task.
fn assert_vectorized_sound(
    lam: &Lambda,
    rows: &[Value],
    filter: bool,
    sample_all: bool,
) -> Result<(), TestCaseError> {
    let base = base_scope();
    let catalog = Catalog::new().with("xs", (0..6).map(Value::Int).collect::<Vec<_>>());

    let compiled = compile_lambda(lam);
    let caps = compiled.bind(&base);
    let stage = if filter {
        VecStageSpec::Filter(&compiled, &caps)
    } else {
        VecStageSpec::Map(&compiled, &caps)
    };
    // `sample_all` feeds the whole batch to the driver-side sample, which is
    // what turns the string dictionary heuristic on; the single-row sample
    // mirrors the engine's minimum. Shape always comes from the first row.
    let sample = if sample_all { rows } else { &rows[..1] };
    // Most generated programs are not specializable; that is the scalar
    // tier's job and is not a soundness question.
    let Some(vp) = specialize_sampled(&[stage], sample) else {
        return Ok(());
    };

    // Scalar reference, row at a time, on a reused machine — exactly what
    // the engine's fallback replay does.
    let mut m = Machine::new();
    let scalar: Vec<Result<Value, ValueError>> = rows
        .iter()
        .map(|r| compiled.eval(std::slice::from_ref(r), &caps, &mut m, &catalog))
        .collect();

    let mut scratch = vp.new_scratch();
    let mut counts = vec![0u64; vp.n_stages() + 1];
    let mut out = Vec::new();
    let ok = vp.run_batch(rows, &mut scratch, &mut counts, &mut out);

    if !ok {
        prop_assert!(out.is_empty(), "aborted batch must leave output untouched");
        prop_assert!(
            counts.iter().all(|&c| c == 0),
            "aborted batch must leave counts untouched"
        );
        return Ok(());
    }

    let n = rows.len() as u64;
    if filter {
        let mut kept = Vec::new();
        for (row, res) in rows.iter().zip(&scalar) {
            match res {
                Ok(Value::Bool(true)) => kept.push(row.clone()),
                Ok(Value::Bool(false)) => {}
                other => prop_assert!(
                    false,
                    "vectorized filter accepted a batch whose scalar predicate \
                     yields {:?} on {:?}",
                    other,
                    row
                ),
            }
        }
        prop_assert_eq!(&out, &kept, "filter output diverges from scalar keep-set");
        prop_assert_eq!(
            &counts,
            &vec![n, kept.len() as u64],
            "filter counts diverge from scalar loop"
        );
    } else {
        let mut want = Vec::new();
        for (row, res) in rows.iter().zip(&scalar) {
            match res {
                Ok(v) => want.push(v.clone()),
                Err(e) => prop_assert!(
                    false,
                    "vectorized map accepted a batch whose scalar evaluation \
                     fails with {:?} on {:?}",
                    e,
                    row
                ),
            }
        }
        prop_assert_eq!(&out, &want, "map output diverges from scalar tier");
        prop_assert_eq!(&counts, &vec![n, n], "map counts diverge from scalar loop");
    }

    // Scratch reuse: a second identical batch must append, not corrupt.
    let ok2 = vp.run_batch(rows, &mut scratch, &mut counts, &mut out);
    prop_assert!(ok2, "same batch must stay evaluable on reused scratch");
    prop_assert_eq!(
        out.len() as u64,
        counts[vp.n_stages()],
        "second batch must append the same output rows"
    );
    prop_assert_eq!(
        &out[..out.len() / 2],
        &out[out.len() / 2..],
        "reused scratch must not perturb results"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_lambda_matches_interpreter(
        body in expr_strategy(),
        ax in value_strategy(),
        ay in value_strategy(),
    ) {
        let lam = Lambda::new(["x", "y"], body);
        assert_tiers_agree(&lam, &[ax, ay])?;
    }

    #[test]
    fn compiled_bag_body_matches_interpreter(
        head in expr_strategy(),
        pred in expr_strategy(),
        arg in value_strategy(),
        shape in 0u8..4,
    ) {
        // FlatMap bodies the engine compiles: the element parameter is `x`.
        let body = match shape {
            0 => BagExpr::of_value(head),
            1 => BagExpr::Ref { name: "b0".into() }.map(Lambda::new(["e"], head)),
            2 => BagExpr::of_value(head).filter(Lambda::new(["e"], pred)),
            _ => BagExpr::of_value(head).plus(
                BagExpr::Ref { name: "b0".into() }.filter(Lambda::new(["e"], pred)),
            ),
        };
        let base = base_scope();
        let catalog = Catalog::new();

        let mut env = Env::new(&base);
        let want = interp::eval_bag_with_binding(&body, "x", arg.clone(), &mut env, &catalog);

        let compiled = compile_bag_body("x", &body);
        let caps = compiled.bind(&base);
        let mut m = Machine::new();
        let got = compiled.eval(arg, &caps, &mut m, &catalog);

        prop_assert_eq!(want, got, "bag tier divergence on {:?}", body);
    }

    #[test]
    fn vectorized_map_matches_scalar_tiers(
        body in expr_strategy(),
        rows in prop::collection::vec(value_strategy(), 1..12),
    ) {
        let lam = Lambda::new(["x"], body);
        assert_vectorized_sound(&lam, &rows, false, false)?;
    }

    #[test]
    fn vectorized_filter_matches_scalar_tiers(
        body in expr_strategy(),
        rows in prop::collection::vec(value_strategy(), 1..12),
    ) {
        let lam = Lambda::new(["x"], body);
        assert_vectorized_sound(&lam, &rows, true, false)?;
    }

    // Same-shaped numeric tuples specialize far more often than fully
    // random values, so this variant drives the kernels (not just the
    // shape-mismatch abort) and the branch-masking machinery hard.
    #[test]
    fn vectorized_map_matches_scalar_tiers_on_homogeneous_batches(
        body in expr_strategy(),
        rows in prop::collection::vec(
            ((-8i64..=8), prop_oneof![Just(-2.5f64), Just(0.0), Just(1.5)], any::<bool>())
                .prop_map(|(i, f, b)| Value::tuple(vec![
                    Value::Int(i), Value::Float(f), Value::Bool(b),
                ])),
            1..24,
        ),
    ) {
        let lam = Lambda::new(["x"], body);
        assert_vectorized_sound(&lam, &rows, false, false)?;
    }

    // String-bearing bodies from the shared typed generator: mostly
    // specializable, so the string kernels (not just the refusal path) run
    // against the scalar tiers. Conforming rows drive the kernels and the
    // dictionary encoding; chaotic rows drive shape aborts and replays.
    #[test]
    fn vectorized_string_map_matches_scalar_tiers(
        body in string_exprs::map_body(),
        rows in prop::collection::vec(string_exprs::string_row(), 1..24),
        sample_all in any::<bool>(),
    ) {
        let lam = Lambda::new(["x"], body);
        assert_vectorized_sound(&lam, &rows, false, sample_all)?;
        // The same body must also agree scalar-vs-interpreter on each row.
        for row in rows.iter().take(4) {
            assert_tiers_agree(&lam, std::slice::from_ref(row))?;
        }
    }

    #[test]
    fn vectorized_string_filter_matches_scalar_tiers(
        body in string_exprs::bool_expr(2),
        rows in prop::collection::vec(string_exprs::chaotic_row(), 1..24),
        sample_all in any::<bool>(),
    ) {
        let lam = Lambda::new(["x"], body);
        assert_vectorized_sound(&lam, &rows, true, sample_all)?;
    }

    #[test]
    fn vectorized_string_keys_match_scalar_tiers(
        body in string_exprs::key_body(),
        rows in prop::collection::vec(string_exprs::chaotic_row(), 1..24),
    ) {
        // Key extraction lowers as a single Map stage; its soundness
        // contract is the same as any map's.
        let lam = Lambda::new(["x"], body);
        assert_vectorized_sound(&lam, &rows, false, true)?;
    }
}

/// The engine replays an aborted batch row-at-a-time through the scalar
/// tier. This must surface the first error *in evaluation order*: the error
/// of the earliest erroring row — not the error raised by the textually
/// earliest instruction anywhere in the batch. Here row 0 fails late in its
/// program (`%` by zero) while row 1 fails early (`/` by zero); the
/// replayed error must be row 0's.
#[test]
fn batch_abort_replay_reproduces_first_error_in_row_order() {
    let x = || ScalarExpr::var("x");
    let body = x().get(0).div(x().get(1)).add(x().get(2).rem(x().get(3)));
    let lam = Lambda::new(["x"], body);

    let rows = vec![
        // div fine (1.0 / 2.0), rem errors (1 % 0): fails at the later op.
        Value::tuple(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Int(1),
            Value::Int(0),
        ]),
        // div errors (1.0 / 0.0): fails at the earlier op.
        Value::tuple(vec![
            Value::Float(1.0),
            Value::Float(0.0),
            Value::Int(1),
            Value::Int(2),
        ]),
    ];

    let base = base_scope();
    let catalog = Catalog::new();
    let compiled = compile_lambda(&lam);
    let caps = compiled.bind(&base);
    let vp = specialize(&[VecStageSpec::Map(&compiled, &caps)], &rows[0])
        .expect("float/int arithmetic over a numeric tuple must specialize");

    let mut scratch = vp.new_scratch();
    let mut counts = vec![0u64; vp.n_stages() + 1];
    let mut out = Vec::new();
    assert!(
        !vp.run_batch(&rows, &mut scratch, &mut counts, &mut out),
        "a selected erroring lane must abort the batch"
    );
    assert!(out.is_empty() && counts.iter().all(|&c| c == 0));

    // Row-at-a-time replay, as the engine performs it.
    let mut m = Machine::new();
    let replayed = rows
        .iter()
        .map(|r| compiled.eval(std::slice::from_ref(r), &caps, &mut m, &catalog))
        .collect::<Result<Vec<_>, _>>()
        .expect_err("replay must surface an error");
    let row0_alone = compiled
        .eval(
            std::slice::from_ref(&rows[0]),
            &caps,
            &mut Machine::new(),
            &catalog,
        )
        .expect_err("row 0 errors on its own");
    assert_eq!(
        replayed, row0_alone,
        "replay must report the earliest erroring *row*, not the earliest \
         erroring instruction in the batch"
    );
    assert!(
        matches!(&replayed, ValueError::Arithmetic(m) if m.contains("modulo")),
        "row 0 fails at the modulo, got {replayed:?}"
    );
}
