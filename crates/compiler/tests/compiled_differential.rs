//! Differential property tests: the slot-based compiled evaluators
//! ([`emma_compiler::compiled`]) must agree with the reference interpreter
//! ([`emma_compiler::interp`]) on *every* expression — same `Value` on
//! success, same `ValueError` on failure. The interpreter is the executable
//! specification; this suite throws randomly generated (and mostly
//! ill-typed) expression trees at both tiers and demands bit-for-bit equal
//! `Result`s, covering the error paths hand-written tests rarely reach:
//! type mismatches, division by zero, out-of-range field access, unbound
//! variables, and shadowing through fold binders.

use std::collections::HashMap;

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::compiled::{compile_bag_body, compile_lambda, Machine};
use emma_compiler::expr::{BuiltinFn, FoldOp, Lambda, ScalarExpr};
use emma_compiler::interp::{self, Catalog, Env};
use emma_compiler::value::{Value, ValueError};
use proptest::prelude::*;

/// Variable pool the generator draws from. `x`/`y` are lambda parameters,
/// `b0`/`b1` come from the broadcast base scope, `e` is only ever bound by a
/// generated fold binder (unbound elsewhere), and `miss` is never bound —
/// so both unbound-variable handling and shadowing get exercised.
const VARS: [&str; 6] = ["x", "y", "b0", "b1", "e", "miss"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-8i64..=8).prop_map(Value::Int),
        prop_oneof![
            Just(-2.5f64),
            Just(0.0f64),
            Just(1.5f64),
            Just(4.0f64),
            Just(9.0f64)
        ]
        .prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::str),
        prop::collection::vec((-4i64..=4).prop_map(Value::Int), 0..3).prop_map(Value::tuple),
    ]
}

fn leaf_strategy() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        value_strategy().prop_map(ScalarExpr::lit),
        (0usize..VARS.len()).prop_map(|i| ScalarExpr::var(VARS[i])),
    ]
}

/// A fold whose input bag, binder lambda, and aggregate are all drawn from
/// generated parts. The binder is named `e`, shadowing any outer `e`.
fn fold_strategy(inner: BoxedStrategy<ScalarExpr>) -> impl Strategy<Value = ScalarExpr> {
    let bag = prop_oneof![
        prop::collection::vec((-5i64..=5).prop_map(Value::Int), 0..4).prop_map(BagExpr::values),
        Just(BagExpr::Ref { name: "b0".into() }),
        Just(BagExpr::Ref {
            name: "miss".into()
        }),
    ];
    (bag, inner.clone(), inner, 0u8..4).prop_map(|(bag, body, pred, which)| match which {
        0 => bag.map(Lambda::new(["e"], body)).fold(FoldOp::sum()),
        1 => bag.filter(Lambda::new(["e"], pred)).fold(FoldOp::count()),
        2 => bag
            .flat_map(BagLambda::new("e", BagExpr::of_value(body)))
            .fold(FoldOp::max()),
        _ => ScalarExpr::BagOf(Box::new(bag.map(Lambda::new(["e"], body)).distinct())),
    })
}

fn expr_strategy() -> BoxedStrategy<ScalarExpr> {
    leaf_strategy().prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            // Binary operators, including the ones with error cases.
            (inner.clone(), inner.clone(), 0u8..13).prop_map(|(a, b, op)| match op {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                3 => a.div(b),
                4 => a.rem(b),
                5 => a.eq(b),
                6 => a.ne(b),
                7 => a.lt(b),
                8 => a.le(b),
                9 => a.gt(b),
                10 => a.ge(b),
                11 => a.and(b),
                _ => a.or(b),
            }),
            inner.clone().prop_map(|a| a.not()),
            (inner.clone(), 0usize..3).prop_map(|(a, i)| a.get(i)),
            (inner.clone(), 0u8..4).prop_map(|(a, f)| match f {
                0 => ScalarExpr::call(BuiltinFn::Abs, vec![a]),
                1 => ScalarExpr::call(BuiltinFn::Sqrt, vec![a]),
                2 => ScalarExpr::call(BuiltinFn::StrLen, vec![a]),
                _ => ScalarExpr::call(BuiltinFn::HashOf, vec![a]),
            }),
            (inner.clone(), inner.clone(), 0u8..3).prop_map(|(a, b, f)| match f {
                0 => ScalarExpr::call(BuiltinFn::MinOf, vec![a, b]),
                1 => ScalarExpr::call(BuiltinFn::MaxOf, vec![a, b]),
                _ => ScalarExpr::call(BuiltinFn::StrContains, vec![a, b]),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| ScalarExpr::If(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            prop::collection::vec(inner.clone(), 0..3).prop_map(ScalarExpr::Tuple),
            fold_strategy(inner),
        ]
    })
}

fn base_scope() -> HashMap<String, Value> {
    let mut base = HashMap::new();
    base.insert(
        "b0".to_string(),
        Value::bag(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
    );
    base.insert("b1".to_string(), Value::Int(7));
    base
}

/// Evaluates `lam` on `args` through both tiers and asserts the full
/// `Result<Value, ValueError>` is identical.
fn assert_tiers_agree(lam: &Lambda, args: &[Value]) -> Result<(), TestCaseError> {
    let base = base_scope();
    let catalog = Catalog::new().with("xs", (0..6).map(Value::Int).collect::<Vec<_>>());

    let mut env = Env::new(&base);
    let want: Result<Value, ValueError> = interp::eval_lambda(lam, args, &mut env, &catalog);

    let compiled = compile_lambda(lam);
    let caps = compiled.bind(&base);
    let mut m = Machine::new();
    let got = compiled.eval(args, &caps, &mut m, &catalog);

    prop_assert_eq!(&want, &got, "tier divergence on {:?}", lam);

    // Machines are reused across rows by the engine: a second evaluation on
    // the same machine must not be affected by leftover state.
    let again = compiled.eval(args, &caps, &mut m, &catalog);
    prop_assert_eq!(&want, &again, "machine reuse divergence on {:?}", lam);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_lambda_matches_interpreter(
        body in expr_strategy(),
        ax in value_strategy(),
        ay in value_strategy(),
    ) {
        let lam = Lambda::new(["x", "y"], body);
        assert_tiers_agree(&lam, &[ax, ay])?;
    }

    #[test]
    fn compiled_bag_body_matches_interpreter(
        head in expr_strategy(),
        pred in expr_strategy(),
        arg in value_strategy(),
        shape in 0u8..4,
    ) {
        // FlatMap bodies the engine compiles: the element parameter is `x`.
        let body = match shape {
            0 => BagExpr::of_value(head),
            1 => BagExpr::Ref { name: "b0".into() }.map(Lambda::new(["e"], head)),
            2 => BagExpr::of_value(head).filter(Lambda::new(["e"], pred)),
            _ => BagExpr::of_value(head).plus(
                BagExpr::Ref { name: "b0".into() }.filter(Lambda::new(["e"], pred)),
            ),
        };
        let base = base_scope();
        let catalog = Catalog::new();

        let mut env = Env::new(&base);
        let want = interp::eval_bag_with_binding(&body, "x", arg.clone(), &mut env, &catalog);

        let compiled = compile_bag_body("x", &body);
        let caps = compiled.bind(&base);
        let mut m = Machine::new();
        let got = compiled.eval(arg, &caps, &mut m, &catalog);

        prop_assert_eq!(want, got, "bag tier divergence on {:?}", body);
    }
}
