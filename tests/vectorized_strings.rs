//! Cross-tier differential harness for the string kernels and the
//! vectorized key path.
//!
//! One place asserts the whole contract: for generated string-bearing
//! programs (shared typed generator in `tests/common/string_exprs.rs`), the
//! reference interpreter, the scalar compiled tier, and the vectorized tier
//! must agree on every sink's values; the two engine tiers must additionally
//! agree on errors, on every cost-model counter, and on the exact bit
//! pattern of the simulated clock — across 1/2/4 worker threads, both
//! dispatch modes, injected chaos, and skew splitting. The batch tier's only
//! permitted trace is its own telemetry (`rows_vectorized`,
//! `batches_executed`, `vector_fallbacks`, `key_path_fallbacks`).
//!
//! The deterministic tests pin the refusal counters site by site: a fully
//! string-vectorizable plan reports zero fallbacks, a non-specializable map
//! body bumps `vector_fallbacks`, a residual-predicate probe (scalar by
//! design) bumps `key_path_fallbacks`, and the length-aware `contains` cost
//! is identical across tiers while growing with input bytes.

mod common;
#[path = "common/string_exprs.rs"]
mod string_exprs;

use emma::prelude::*;
use emma_engine::ParallelismMode;
use proptest::prelude::*;

/// The thread-count × dispatch-mode matrix every determinism check spans.
const MATRIX: [(ParallelismMode, usize); 6] = [
    (ParallelismMode::Pool, 1),
    (ParallelismMode::Pool, 2),
    (ParallelismMode::Pool, 4),
    (ParallelismMode::PerOperator, 1),
    (ParallelismMode::PerOperator, 2),
    (ParallelismMode::PerOperator, 4),
];

fn engine() -> Engine {
    common::tiny_engine(Personality::sparrow())
}

fn x() -> ScalarExpr {
    ScalarExpr::var("x")
}

/// Zeroes the vectorization telemetry — the only counters the batch tier is
/// allowed to move relative to a scalar run.
fn without_vec_telemetry(stats: &ExecStats) -> ExecStats {
    let mut s = stats.clone();
    s.rows_vectorized = 0;
    s.batches_executed = 0;
    s.vector_fallbacks = 0;
    s.key_path_fallbacks = 0;
    s
}

/// The generated workload: a map, a filter, a `groupBy`, a fused
/// group-aggregate, a broadcast join on a string key, and a `distinct` —
/// every operator family the string kernels and the key path touch.
fn string_program(
    map_body: ScalarExpr,
    filter_body: ScalarExpr,
    key_body: ScalarExpr,
    rows: Vec<Value>,
) -> (Program, Catalog) {
    let dims: Vec<Value> = ["", "a", "b", "ab", "ba", "abc"]
        .iter()
        .enumerate()
        .map(|(i, s)| Value::tuple(vec![Value::str(*s), Value::Int(i as i64)]))
        .collect();
    let catalog = Catalog::new().with("rows", rows).with("dims", dims);
    let join_inner = BagExpr::read("dims")
        .filter(Lambda::new(
            ["d"],
            x().get(1).eq(ScalarExpr::var("d").get(0)),
        ))
        .map(Lambda::new(
            ["d"],
            ScalarExpr::Tuple(vec![x().get(0), ScalarExpr::var("d").get(1)]),
        ));
    let program = Program::new(vec![
        Stmt::write(
            "mapped",
            BagExpr::read("rows").map(Lambda::new(["x"], map_body)),
        ),
        Stmt::write(
            "kept",
            BagExpr::read("rows").filter(Lambda::new(["x"], filter_body)),
        ),
        Stmt::write(
            "groups",
            BagExpr::read("rows").group_by(Lambda::new(["x"], key_body.clone())),
        ),
        Stmt::write(
            "agg",
            BagExpr::read("rows")
                .group_by(Lambda::new(["x"], key_body))
                .map(Lambda::new(
                    ["g"],
                    ScalarExpr::Tuple(vec![
                        ScalarExpr::var("g").get(0),
                        BagExpr::of_value(ScalarExpr::var("g").get(1)).count(),
                    ]),
                )),
        ),
        Stmt::write(
            "joined",
            BagExpr::read("rows").flat_map(BagLambda::new("x", join_inner)),
        ),
        Stmt::write(
            "keys",
            BagExpr::read("rows")
                .map(Lambda::new(["x"], x().get(1)))
                .distinct(),
        ),
    ]);
    (program, catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The headline: interp vs compiled vs vectorized over generated string
    // programs, across the thread × mode matrix, with and without chaos,
    // with and without skew splitting — values, errors, counters, and the
    // simulated clock bits all checked in one place.
    #[test]
    fn cross_tier_differential_on_string_programs(
        map_body in string_exprs::map_body(),
        filter_body in string_exprs::bool_expr(2),
        key_body in string_exprs::key_body(),
        rows in prop::collection::vec(string_exprs::string_row(), 150..400),
        chaos_seed in any::<u64>(),
    ) {
        let (p, catalog) = string_program(map_body, filter_body, key_body, rows);
        let interp = Interp::new(&catalog).run(&p);
        let prog = parallelize(&p, &OptimizerFlags::all().with_compiled_eval(true));
        let skew_cfg = SkewConfig::default().with_min_part_rows(32);

        for chaos in [None, Some(FaultConfig::chaos(chaos_seed))] {
            for skew_on in [false, true] {
                let mk = |vec_on: bool, mode: ParallelismMode, threads: usize| {
                    let mut e = engine()
                        .with_parallelism_mode(mode)
                        .with_worker_threads(Some(threads));
                    if let Some(cfg) = chaos {
                        e = e.with_faults(cfg);
                    }
                    if skew_on {
                        e = e.with_skew_splitting(skew_cfg);
                    }
                    if vec_on {
                        e = e.with_vectorized_eval(BatchConfig::new(64));
                    }
                    e.run(&prog, &catalog)
                };
                let scalar = mk(false, ParallelismMode::Pool, 2);
                let vec_runs: Vec<_> =
                    MATRIX.iter().map(|&(m, t)| mk(true, m, t)).collect();

                match &scalar {
                    // A generated body may error (e.g. divide by a zero
                    // column). The interpreter must agree that the program
                    // errors, and every vectorized run must reproduce the
                    // scalar tier's error exactly — that is the replay
                    // contract.
                    Err(e) => {
                        prop_assert!(
                            interp.is_err(),
                            "engine errored but the interpreter succeeded: {e:?}"
                        );
                        for vr in &vec_runs {
                            match vr {
                                Err(ve) => {
                                    prop_assert_eq!(format!("{e:?}"), format!("{ve:?}"));
                                }
                                Ok(_) => prop_assert!(
                                    false,
                                    "vectorized run succeeded where the scalar tier failed"
                                ),
                            }
                        }
                    }
                    Ok(s) => {
                        // Values: engine sinks match the interpreter as
                        // multisets (partitioned operators concatenate in
                        // hash order, not input order).
                        let want = interp.as_ref().expect("interp agrees the program runs");
                        for (sink, rows) in &want.writes {
                            prop_assert_eq!(
                                Value::bag(rows.clone()),
                                Value::bag(s.writes[sink].clone()),
                                "sink {} diverges from the interpreter",
                                sink
                            );
                        }
                        let first = vec_runs[0].as_ref().expect("vectorized run");
                        // With the tier on, every run either vectorizes rows
                        // or visibly counts its refusals.
                        prop_assert!(
                            first.stats.rows_vectorized
                                + first.stats.vector_fallbacks
                                + first.stats.key_path_fallbacks
                                > 0,
                            "vectorized tier neither engaged nor reported"
                        );
                        for vr in &vec_runs {
                            let v = vr.as_ref().expect("vectorized run");
                            prop_assert_eq!(&v.writes, &s.writes);
                            prop_assert_eq!(&v.scalars, &s.scalars);
                            prop_assert_eq!(without_vec_telemetry(&v.stats), s.stats.clone());
                            prop_assert_eq!(&v.stats, &first.stats);
                            prop_assert_eq!(
                                v.stats.simulated_secs.to_bits(),
                                s.stats.simulated_secs.to_bits(),
                                "vectorization moved the clock"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Rows shaped like the email workload: `(id, "user<i>@<domain>", domain,
/// small int)` over five distinct domains — string-dictionary friendly.
fn email_rows(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let domain = match i % 5 {
                0 => "gmail.com",
                1 => "yahoo.com",
                2 => "corp.example",
                3 => "dev.null",
                _ => "mail.net",
            };
            Value::tuple(vec![
                Value::Int(i as i64),
                Value::str(format!("user{i}@{domain}")),
                Value::str(domain),
                Value::Int((i % 7) as i64),
            ])
        })
        .collect()
}

/// A plan built entirely from the vectorizable string surface — a fused
/// `contains` filter + `strlen` map and a string-keyed fused group-aggregate
/// — must engage the batch tier with *zero* refusals on either counter,
/// while reproducing the scalar tier bit-for-bit.
#[test]
fn fully_vectorized_string_plan_reports_zero_fallbacks() {
    let catalog = Catalog::new().with("rows", email_rows(3_000));
    let p = Program::new(vec![
        Stmt::write(
            "kept",
            BagExpr::read("rows")
                .filter(Lambda::new(
                    ["x"],
                    ScalarExpr::call(
                        BuiltinFn::StrContains,
                        vec![x().get(1), ScalarExpr::lit(Value::str("gmail.com"))],
                    ),
                ))
                .map(Lambda::new(
                    ["x"],
                    ScalarExpr::call(BuiltinFn::StrLen, vec![x().get(1)]).add(x().get(3)),
                )),
        ),
        Stmt::write(
            "agg",
            BagExpr::read("rows")
                .group_by(Lambda::new(["x"], x().get(2)))
                .map(Lambda::new(
                    ["g"],
                    ScalarExpr::Tuple(vec![
                        ScalarExpr::var("g").get(0),
                        BagExpr::of_value(ScalarExpr::var("g").get(1)).count(),
                    ]),
                )),
        ),
    ]);
    let prog = parallelize(&p, &OptimizerFlags::all().with_compiled_eval(true));
    let scalar = engine().run(&prog, &catalog).expect("scalar");
    let vec = engine()
        .with_vectorized_eval(BatchConfig::new(256))
        .run(&prog, &catalog)
        .expect("vectorized");
    assert_eq!(vec.stats.vector_fallbacks, 0, "{}", vec.stats);
    assert_eq!(vec.stats.key_path_fallbacks, 0, "{}", vec.stats);
    assert!(vec.stats.rows_vectorized > 0, "{}", vec.stats);
    assert_eq!(vec.writes, scalar.writes);
    assert_eq!(
        vec.stats.simulated_secs.to_bits(),
        scalar.stats.simulated_secs.to_bits()
    );
}

/// A map body carrying a nested fold resists specialization: the refusal
/// lands in `vector_fallbacks`, never in the key-path counter.
#[test]
fn non_specializable_string_body_bumps_vector_fallbacks() {
    let catalog = Catalog::new().with("rows", email_rows(400));
    let nested = ScalarExpr::Fold(
        Box::new(BagExpr::Values(vec![Value::Int(1), Value::Int(2)])),
        Box::new(FoldOp::count()),
    )
    .add(ScalarExpr::call(BuiltinFn::StrLen, vec![x().get(1)]));
    let p = Program::new(vec![Stmt::write(
        "out",
        BagExpr::read("rows").map(Lambda::new(["x"], nested)),
    )]);
    let prog = parallelize(&p, &OptimizerFlags::all().with_compiled_eval(true));
    let scalar = engine().run(&prog, &catalog).expect("scalar");
    let vec = engine()
        .with_vectorized_eval(BatchConfig::new(128))
        .run(&prog, &catalog)
        .expect("vectorized");
    assert!(vec.stats.vector_fallbacks >= 1, "{}", vec.stats);
    assert_eq!(vec.stats.key_path_fallbacks, 0, "{}", vec.stats);
    assert_eq!(vec.writes, scalar.writes);
    assert_eq!(
        vec.stats.simulated_secs.to_bits(),
        scalar.stats.simulated_secs.to_bits()
    );
}

/// A join with a residual predicate keeps its probe loop scalar by design
/// (residual errors interleave with probe-key errors in row order); the
/// site must be visible in `key_path_fallbacks`.
#[test]
fn residual_probe_is_scalar_by_design_and_counted() {
    let catalog = Catalog::new().with("rows", email_rows(600)).with(
        "dims",
        vec![
            Value::tuple(vec![Value::str("gmail.com"), Value::Int(3)]),
            Value::tuple(vec![Value::str("dev.null"), Value::Int(5)]),
        ],
    );
    let join_inner = BagExpr::read("dims")
        .filter(Lambda::new(
            ["d"],
            x().get(2)
                .eq(ScalarExpr::var("d").get(0))
                .and(x().get(3).lt(ScalarExpr::var("d").get(1))),
        ))
        .map(Lambda::new(["d"], ScalarExpr::var("d").get(1)));
    let p = Program::new(vec![Stmt::write(
        "joined",
        BagExpr::read("rows").flat_map(BagLambda::new("x", join_inner)),
    )]);
    let prog = parallelize(&p, &OptimizerFlags::all().with_compiled_eval(true));
    let scalar = engine().run(&prog, &catalog).expect("scalar");
    let vec = engine()
        .with_vectorized_eval(BatchConfig::new(128))
        .run(&prog, &catalog)
        .expect("vectorized");
    assert!(vec.stats.key_path_fallbacks >= 1, "{}", vec.stats);
    assert_eq!(vec.writes, scalar.writes);
    assert_eq!(
        vec.stats.simulated_secs.to_bits(),
        scalar.stats.simulated_secs.to_bits()
    );
}

/// `contains` charges per input byte, identically in both tiers: the charge
/// beyond a byte-free predicate over the *same* rows grows with string
/// length, and vectorizing never moves the clock.
#[test]
fn strcontains_cost_is_length_aware_and_tier_identical() {
    let rows = |len: usize| -> Vec<Value> {
        (0..2_000i64)
            .map(|i| Value::tuple(vec![Value::Int(i), Value::str("a".repeat(len))]))
            .collect()
    };
    let contains_prog = Program::new(vec![Stmt::write(
        "kept",
        BagExpr::read("rows").filter(Lambda::new(
            ["x"],
            ScalarExpr::call(
                BuiltinFn::StrContains,
                vec![x().get(1), ScalarExpr::lit(Value::str("zz"))],
            ),
        )),
    )]);
    let byte_free_prog = Program::new(vec![Stmt::write(
        "kept",
        BagExpr::read("rows").filter(Lambda::new(
            ["x"],
            // Rejects every row, like the `contains("zz")` probe, so the two
            // programs differ only in the predicate's own charge.
            x().get(0).lt(ScalarExpr::lit(Value::Int(0))),
        )),
    )]);
    let run = |p: &Program, len: usize, vec_on: bool| {
        let catalog = Catalog::new().with("rows", rows(len));
        let prog = parallelize(p, &OptimizerFlags::all().with_compiled_eval(true));
        let mut e = engine();
        if vec_on {
            e = e.with_vectorized_eval(BatchConfig::new(256));
        }
        e.run(&prog, &catalog).expect("run")
    };
    // Tier bit-identity at both lengths.
    for len in [4usize, 256] {
        let scalar = run(&contains_prog, len, false);
        let vectorized = run(&contains_prog, len, true);
        assert_eq!(
            scalar.stats.simulated_secs.to_bits(),
            vectorized.stats.simulated_secs.to_bits(),
            "len {len}: vectorizing `contains` moved the clock"
        );
    }
    // Length-awareness: subtracting a byte-free predicate over identical
    // rows isolates the per-byte charge, which must grow with the strings.
    let surcharge = |len: usize| {
        run(&contains_prog, len, false).stats.simulated_secs
            - run(&byte_free_prog, len, false).stats.simulated_secs
    };
    let (short, long) = (surcharge(4), surcharge(256));
    assert!(
        long > short,
        "contains surcharge must grow with haystack bytes: {short} vs {long}"
    );
}
