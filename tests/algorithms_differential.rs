//! End-to-end differential tests: every paper algorithm, compiled under
//! every optimizer configuration, must produce (approximately) the same
//! results on both engines as the sequential reference interpreter — and,
//! where a typed local implementation exists, match it too.

mod common;

use common::*;
use emma::algorithms::{connected_components as cc, groupagg, kmeans, pagerank, spam, tpch};
use emma::prelude::*;
use emma_datagen::emails::EmailSpec;
use emma_datagen::graph::{self, GraphSpec};
use emma_datagen::points::{self, PointsSpec};
use emma_datagen::tpch::TpchSpec;
use emma_datagen::KeyDistribution;

fn small_points() -> PointsSpec {
    PointsSpec {
        n: 300,
        ..Default::default()
    }
}

fn small_graph() -> GraphSpec {
    GraphSpec {
        vertices: 120,
        avg_degree: 4,
        ..Default::default()
    }
}

fn small_emails() -> EmailSpec {
    EmailSpec {
        emails: 300,
        blacklist: 60,
        ip_domain: 300,
        body_bytes: 40,
        info_bytes: 20,
        seed: 7,
    }
}

fn small_tpch() -> TpchSpec {
    TpchSpec {
        scale: 0.1,
        seed: 7,
    }
}

#[test]
fn kmeans_differential_across_flags_and_engines() {
    let spec = small_points();
    let params = kmeans::KmeansParams::default();
    let program = kmeans::program(&params, points::initial_centroids(&spec));
    let catalog = kmeans::catalog(&spec);
    for flags in flag_matrix() {
        for p in [Personality::sparrow(), Personality::flamingo()] {
            assert_engine_matches_interp(&program, &catalog, &flags, &tiny_engine(p), 1e-6);
        }
    }
}

#[test]
fn kmeans_engine_matches_typed_local_implementation() {
    let spec = small_points();
    let params = kmeans::KmeansParams::default();
    let program = kmeans::program(&params, points::initial_centroids(&spec));
    let catalog = kmeans::catalog(&spec);
    let compiled = parallelize(&program, &OptimizerFlags::all());
    let run = tiny_engine(Personality::sparrow())
        .run(&compiled, &catalog)
        .expect("engine run");

    // Ground truth: the typed local implementation.
    let (pts_rows, _) = points::generate(&spec);
    let pts: Vec<(i64, Vec<f64>)> = pts_rows
        .iter()
        .map(|p| {
            (
                p.field(0).unwrap().as_int().unwrap(),
                p.field(1).unwrap().as_vector().unwrap().to_vec(),
            )
        })
        .collect();
    let init: Vec<(i64, Vec<f64>)> = points::initial_centroids(&spec)
        .iter()
        .map(|c| {
            (
                c.field(0).unwrap().as_int().unwrap(),
                c.field(1).unwrap().as_vector().unwrap().to_vec(),
            )
        })
        .collect();
    let truth = kmeans::local_kmeans(&pts, &init, params.epsilon);

    // Compare cluster assignment: each written solution is (cid, point);
    // recompute nearest-center under the local truth and compare.
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let solutions = &run.writes[kmeans::SINK];
    assert_eq!(solutions.len(), pts.len());
    let mut disagreements = 0usize;
    for s in solutions {
        let cid = s.field(0).unwrap().as_int().unwrap();
        let pos = s.field(1).unwrap().field(1).unwrap().as_vector().unwrap();
        let best = truth
            .iter()
            .min_by(|a, b| dist(&a.1, pos).total_cmp(&dist(&b.1, pos)))
            .unwrap()
            .0;
        if best != cid {
            disagreements += 1;
        }
    }
    // Well-separated blobs: assignments agree (allow boundary noise ≤ 1 %).
    assert!(
        disagreements <= solutions.len() / 100,
        "{disagreements} of {} assignments disagree with the local run",
        solutions.len()
    );
}

#[test]
fn pagerank_differential_across_flags() {
    let gspec = small_graph();
    let params = pagerank::PagerankParams {
        iterations: 5,
        num_pages: gspec.vertices,
        ..Default::default()
    };
    let program = pagerank::program(&params);
    let catalog = pagerank::catalog(&gspec);
    for flags in flag_matrix() {
        assert_engine_matches_interp(
            &program,
            &catalog,
            &flags,
            &tiny_engine(Personality::sparrow()),
            1e-6,
        );
    }
}

#[test]
fn pagerank_ranks_form_a_distribution_and_favor_popular_vertices() {
    let gspec = small_graph();
    let params = pagerank::PagerankParams {
        iterations: 15,
        num_pages: gspec.vertices,
        ..Default::default()
    };
    let compiled = parallelize(&pagerank::program(&params), &OptimizerFlags::all());
    let run = tiny_engine(Personality::sparrow())
        .run(&compiled, &pagerank::catalog(&gspec))
        .expect("engine run");
    let ranks = &run.writes[pagerank::SINK];
    // The Zipf target-popularity makes vertex 0 the most linked-to.
    let rank_of = |id: i64| -> f64 {
        ranks
            .iter()
            .find(|r| r.field(0).unwrap().as_int().unwrap() == id)
            .map(|r| r.field(1).unwrap().as_float().unwrap())
            .unwrap_or(0.0)
    };
    let r0 = rank_of(0);
    let tail_avg: f64 = (60..120).map(rank_of).sum::<f64>() / 60.0;
    assert!(
        r0 > tail_avg * 5.0,
        "hub rank {r0} vs tail average {tail_avg}"
    );
}

#[test]
fn connected_components_differential_and_ground_truth() {
    let gspec = small_graph();
    let program = cc::program();
    let catalog = cc::catalog(&gspec);
    for flags in flag_matrix() {
        assert_engine_matches_interp(
            &program,
            &catalog,
            &flags,
            &tiny_engine(Personality::flamingo()),
            0.0,
        );
    }
    // Cross-check against the typed StatefulBag variant (Listing 7):
    // components must induce the same partition of vertices, even though the
    // dataflow form uses min-labels and Listing 7 uses max-labels.
    let adjacency_rows = graph::adjacency(&gspec);
    let mut undirected: std::collections::HashMap<i64, Vec<i64>> = std::collections::HashMap::new();
    for row in &adjacency_rows {
        let v = row.field(0).unwrap().as_int().unwrap();
        undirected.entry(v).or_default();
        for n in row.field(1).unwrap().as_bag().unwrap() {
            let n = n.as_int().unwrap();
            undirected.entry(v).or_default().push(n);
            undirected.entry(n).or_default().push(v);
        }
    }
    let adj: Vec<(i64, Vec<i64>)> = undirected.into_iter().collect();
    let truth = cc::local_cc_stateful(&adj);
    let truth_map: std::collections::HashMap<i64, i64> = truth.into_iter().collect();

    let compiled = parallelize(&program, &OptimizerFlags::all());
    let run = tiny_engine(Personality::sparrow())
        .run(&compiled, &catalog)
        .expect("engine run");
    let comps = &run.writes[cc::SINK];
    // Same-partition check: two vertices share a dataflow label iff they
    // share a Listing-7 label.
    let got: std::collections::HashMap<i64, i64> = comps
        .iter()
        .map(|c| {
            (
                c.field(0).unwrap().as_int().unwrap(),
                c.field(1).unwrap().as_int().unwrap(),
            )
        })
        .collect();
    for (v, label) in &got {
        for (w, label2) in &got {
            let same_dataflow = label == label2;
            let same_truth = truth_map[v] == truth_map[w];
            assert_eq!(
                same_dataflow, same_truth,
                "vertices {v} and {w} disagree on connectivity"
            );
        }
    }
}

#[test]
fn spam_workflow_differential_across_flags_and_engines() {
    let espec = small_emails();
    let program = spam::program(emma_datagen::emails::classifiers(3));
    let catalog = spam::catalog(&espec);
    for flags in flag_matrix() {
        for p in [Personality::sparrow(), Personality::flamingo()] {
            assert_engine_matches_interp(&program, &catalog, &flags, &tiny_engine(p), 0.0);
        }
    }
}

#[test]
fn spam_workflow_picks_the_strictest_classifier() {
    // Higher threshold ⇒ more emails classified spam ⇒ fewer non-spam from
    // blacklisted servers ⇒ fewer hits. The strictest classifier must win.
    let espec = small_emails();
    let classifiers = emma_datagen::emails::classifiers(3); // 20, 30, 40
    let program = spam::program(classifiers);
    let compiled = parallelize(&program, &OptimizerFlags::all());
    let run = tiny_engine(Personality::sparrow())
        .run(&compiled, &spam::catalog(&espec))
        .expect("engine run");
    let best = &run.writes[spam::SINK][0];
    assert_eq!(best.field(0).unwrap().as_int().unwrap(), 40);
}

#[test]
fn tpch_q1_differential_and_shape() {
    let spec = small_tpch();
    let program = tpch::q1_program();
    let catalog = tpch::catalog(&spec);
    for flags in flag_matrix() {
        assert_engine_matches_interp(
            &program,
            &catalog,
            &flags,
            &tiny_engine(Personality::sparrow()),
            1e-6,
        );
    }
    let run = tiny_engine(Personality::flamingo())
        .run(&parallelize(&program, &OptimizerFlags::all()), &catalog)
        .expect("engine run");
    let rows = &run.writes[tpch::Q1_SINK];
    // 3 return flags × 2 line statuses.
    assert_eq!(rows.len(), 6);
    for row in rows {
        let sum_qty = row.field(2).unwrap().as_float().unwrap();
        let avg_qty = row.field(6).unwrap().as_float().unwrap();
        let count = row.field(9).unwrap().as_int().unwrap();
        assert!(count > 0);
        assert!((avg_qty - sum_qty / count as f64).abs() < 1e-9);
        assert!((1.0..=50.0).contains(&avg_qty));
    }
}

#[test]
fn tpch_q4_differential_and_shape() {
    let spec = small_tpch();
    let program = tpch::q4_program();
    let catalog = tpch::catalog(&spec);
    for flags in flag_matrix() {
        assert_engine_matches_interp(
            &program,
            &catalog,
            &flags,
            &tiny_engine(Personality::sparrow()),
            0.0,
        );
    }
    let run = tiny_engine(Personality::sparrow())
        .run(&parallelize(&program, &OptimizerFlags::all()), &catalog)
        .expect("engine run");
    let rows = &run.writes[tpch::Q4_SINK];
    assert!(
        !rows.is_empty() && rows.len() <= 5,
        "{} priorities",
        rows.len()
    );
    let total: i64 = rows
        .iter()
        .map(|r| r.field(1).unwrap().as_int().unwrap())
        .sum();
    assert!(total > 0);
}

#[test]
fn groupagg_differential_across_distributions() {
    let program = groupagg::program();
    for dist in KeyDistribution::all() {
        let catalog = groupagg::catalog(2_000, 40, dist, 5);
        for flags in [
            OptimizerFlags::all(),
            OptimizerFlags::all().with_fold_group_fusion(false),
        ] {
            assert_engine_matches_interp(
                &program,
                &catalog,
                &flags,
                &tiny_engine(Personality::sparrow()),
                0.0,
            );
        }
    }
}
