//! Reproduction of the paper's **Table 1**: which optimizations apply to
//! which program. The optimizer's report must mark exactly the rewrites the
//! paper lists (one documented deviation: our partition-pulling heuristic
//! also fires for the iterative graph algorithms' vertex join, where the
//! paper obtains the same layout effect through Spark's cache of shuffled
//! state — see EXPERIMENTS.md).

use emma::algorithms::{groupagg, kmeans, pagerank, spam, tpch};
use emma::prelude::*;
use emma_datagen::points::{self, PointsSpec};

fn report_for(program: &Program) -> OptimizationReport {
    parallelize(program, &OptimizerFlags::all()).report
}

#[test]
fn workflow_row_matches_table1() {
    // Workflow: Unnesting ✓, Group Fusion ✗, Cache ✓, Partition Pulling ✓.
    let r = report_for(&spam::program(emma_datagen::emails::classifiers(3)));
    let [unnest, fusion, cache, partition] = r.table1_row();
    assert!(unnest, "{r}");
    assert!(!fusion, "{r}");
    assert!(cache, "{r}");
    assert!(partition, "{r}");
    // Both join inputs get a pulled partitioning (emails and blacklist).
    assert!(
        r.partitions_pulled.iter().any(|n| n.contains("emails")),
        "{r}"
    );
    assert!(
        r.partitions_pulled.iter().any(|n| n.contains("blacklist")),
        "{r}"
    );
}

#[test]
fn kmeans_row_matches_table1() {
    // k-means: Unnesting ✗, Group Fusion ✓, Cache ✓, Partition ✗ (paper).
    let spec = PointsSpec::default();
    let r = report_for(&kmeans::program(
        &kmeans::KmeansParams::default(),
        points::initial_centroids(&spec),
    ));
    let [unnest, fusion, cache, _partition] = r.table1_row();
    assert!(!unnest, "{r}");
    assert!(fusion, "{r}");
    assert!(cache, "{r}");
    assert!(r.cached.iter().any(|n| n.contains("points")), "{r}");
}

#[test]
fn pagerank_row_matches_table1() {
    // PageRank: Unnesting ✗, Group Fusion ✓, Cache ✓ (paper).
    let r = report_for(&pagerank::program(&pagerank::PagerankParams::default()));
    let [unnest, fusion, cache, _partition] = r.table1_row();
    assert!(!unnest, "{r}");
    assert!(fusion, "{r}");
    assert!(cache, "{r}");
}

#[test]
fn tpch_q1_row_matches_table1() {
    // Q1: Unnesting ✗, Group Fusion ✓, Cache ✗, Partition ✗.
    let r = report_for(&tpch::q1_program());
    assert_eq!(r.table1_row(), [false, true, false, false], "{r}");
}

#[test]
fn tpch_q4_row_matches_table1() {
    // Q4: Unnesting ✓, Group Fusion ✓, Cache ✗, Partition ✗.
    let r = report_for(&tpch::q4_program());
    assert_eq!(r.table1_row(), [true, true, false, false], "{r}");
}

#[test]
fn groupagg_applies_only_fold_group_fusion() {
    let r = report_for(&groupagg::program());
    assert_eq!(r.table1_row(), [false, true, false, false], "{r}");
}

#[test]
fn flags_gate_each_optimization_independently() {
    let q4 = tpch::q4_program();
    let no_unnest = parallelize(&q4, &OptimizerFlags::all().with_unnest_exists(false)).report;
    assert_eq!(no_unnest.exists_unnested, 0);
    assert!(no_unnest.fold_group_fused > 0);
    let no_fusion = parallelize(&q4, &OptimizerFlags::all().with_fold_group_fusion(false)).report;
    assert_eq!(no_fusion.fold_group_fused, 0);
    assert!(no_fusion.exists_unnested > 0);
    let none = parallelize(&q4, &OptimizerFlags::none()).report;
    assert_eq!(none.table1_row(), [false, false, false, false]);
    assert!(none.inlined.is_empty());
}

#[test]
fn inlining_reports_single_use_definitions() {
    // k-means defines `newCtrds` (used twice — kept) and the Listing-4
    // structure inlines the single-use `clusters`-like chains during
    // normalization; the spam workflow has explicit single-use vals.
    let r = report_for(&spam::program(emma_datagen::emails::classifiers(2)));
    assert!(r.inlined.iter().any(|n| n.contains("nonSpamEmails")), "{r}");
}

#[test]
fn q1_fuses_all_aggregates_into_one_agg_by() {
    let compiled = parallelize(&tpch::q1_program(), &OptimizerFlags::all());
    let emma_compiler::pipeline::CStmt::Write { plan, .. } = &compiled.body[0] else {
        panic!("expected a write")
    };
    assert_eq!(plan.count_ops("AggBy"), 1, "plan:\n{plan}");
    assert_eq!(plan.count_ops("GroupBy"), 0, "plan:\n{plan}");
    // Without fusion the groupBy stays.
    let unfused = parallelize(
        &tpch::q1_program(),
        &OptimizerFlags::all().with_fold_group_fusion(false),
    );
    let emma_compiler::pipeline::CStmt::Write { plan, .. } = &unfused.body[0] else {
        panic!("expected a write")
    };
    assert_eq!(plan.count_ops("GroupBy"), 1, "plan:\n{plan}");
}

#[test]
fn q4_plan_contains_semi_join_with_pushed_filter() {
    let compiled = parallelize(&tpch::q4_program(), &OptimizerFlags::all());
    let emma_compiler::pipeline::CStmt::Write { plan, .. } = &compiled.body[0] else {
        panic!("expected a write")
    };
    let mut found_semi = false;
    plan.visit(&mut |p| {
        if let Plan::Join { kind, right, .. } = p {
            if *kind == emma_compiler::plan::JoinKind::LeftSemi {
                found_semi = true;
                // The commitDate < receiptDate predicate is pushed below the
                // join onto the lineitem side.
                assert_eq!(right.count_ops("Filter"), 1, "plan:\n{p}");
            }
        }
    });
    assert!(found_semi, "no semi-join in plan:\n{plan}");
}
