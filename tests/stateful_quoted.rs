//! Tests for the *quoted* `StatefulBag` (paper, Listing 3 lines 24–31 and
//! Listings 6–7 verbatim): state creation, point-wise message updates with
//! declines, delta semantics, interpreter/engine differentials, and
//! cross-checks against the typed `StatefulBag` ground truth.

mod common;

use common::*;
use emma::algorithms::{connected_components as cc, pagerank};
use emma::prelude::*;
use emma_datagen::graph::{self, GraphSpec};

fn kv(k: i64, v: i64) -> Value {
    Value::tuple(vec![Value::Int(k), Value::Int(v)])
}

/// A minimal stateful program: accounts receiving deposits; negative
/// deposits are declined by the update UDF.
fn accounts_program() -> Program {
    Program::new(vec![
        Stmt::stateful(
            "accounts",
            BagExpr::read("accounts"),
            Lambda::new(["a"], ScalarExpr::var("a").get(0)),
        ),
        Stmt::stateful_update(
            "accounts",
            "delta",
            BagExpr::read("deposits"),
            Lambda::new(["d"], ScalarExpr::var("d").get(0)),
            Lambda::new(
                ["a", "d"],
                ScalarExpr::If(
                    Box::new(ScalarExpr::var("d").get(1).gt(ScalarExpr::lit(0i64))),
                    Box::new(ScalarExpr::Tuple(vec![
                        ScalarExpr::var("a").get(0),
                        ScalarExpr::var("a").get(1).add(ScalarExpr::var("d").get(1)),
                    ])),
                    Box::new(ScalarExpr::Lit(Value::Null)),
                ),
            ),
        ),
        Stmt::write("state", BagExpr::var("accounts")),
        Stmt::write("delta", BagExpr::var("delta")),
    ])
}

fn accounts_catalog() -> Catalog {
    Catalog::new()
        .with("accounts", vec![kv(1, 10), kv(2, 20), kv(3, 30)])
        .with(
            "deposits",
            vec![
                kv(1, 5),   // applies
                kv(1, 2),   // applies on top (messages compose in sequence)
                kv(2, -99), // declined by the UDF
                kv(9, 1),   // no matching state element: dropped
            ],
        )
}

#[test]
fn stateful_update_semantics_in_interpreter() {
    let out = Interp::new(&accounts_catalog())
        .run(&accounts_program())
        .expect("interp run");
    let state = Value::bag(out.writes["state"].clone());
    assert_eq!(
        state,
        Value::bag(vec![kv(1, 17), kv(2, 20), kv(3, 30)]),
        "deposits to 1 compose; decline leaves 2; 3 untouched"
    );
    // The delta contains only the final version of changed elements.
    assert_eq!(
        Value::bag(out.writes["delta"].clone()),
        Value::bag(vec![kv(1, 17)])
    );
}

#[test]
fn stateful_differential_engine_vs_interpreter() {
    let program = accounts_program();
    let catalog = accounts_catalog();
    for flags in flag_matrix() {
        for p in [Personality::sparrow(), Personality::flamingo()] {
            assert_engine_matches_interp(&program, &catalog, &flags, &tiny_engine(p), 0.0);
        }
    }
}

#[test]
fn stateful_pagerank_differential_across_flags() {
    let gspec = GraphSpec {
        vertices: 100,
        avg_degree: 4,
        ..Default::default()
    };
    let params = pagerank::PagerankParams {
        iterations: 4,
        num_pages: gspec.vertices,
        ..Default::default()
    };
    let program = pagerank::stateful_program(&params);
    let catalog = pagerank::catalog(&gspec);
    for flags in flag_matrix() {
        assert_engine_matches_interp(
            &program,
            &catalog,
            &flags,
            &tiny_engine(Personality::sparrow()),
            1e-6,
        );
    }
}

#[test]
fn stateful_pagerank_matches_typed_listing6() {
    let gspec = GraphSpec {
        vertices: 150,
        avg_degree: 5,
        ..Default::default()
    };
    let params = pagerank::PagerankParams {
        iterations: 8,
        num_pages: gspec.vertices,
        ..Default::default()
    };
    // Quoted Listing 6 on the engine.
    let compiled = parallelize(&pagerank::stateful_program(&params), &OptimizerFlags::all());
    let run = tiny_engine(Personality::sparrow())
        .run(&compiled, &pagerank::catalog(&gspec))
        .expect("engine run");
    let mut engine_ranks: Vec<(i64, f64)> = run.writes[pagerank::SINK]
        .iter()
        .map(|r| {
            (
                r.field(0).unwrap().as_int().unwrap(),
                r.field(1).unwrap().as_float().unwrap(),
            )
        })
        .collect();
    engine_ranks.sort_by_key(|(id, _)| *id);

    // Typed Listing 6 ground truth.
    let adjacency: Vec<(i64, Vec<i64>)> = graph::adjacency(&gspec)
        .iter()
        .map(|r| {
            (
                r.field(0).unwrap().as_int().unwrap(),
                r.field(1)
                    .unwrap()
                    .as_bag()
                    .unwrap()
                    .iter()
                    .map(|n| n.as_int().unwrap())
                    .collect(),
            )
        })
        .collect();
    let mut truth = pagerank::local_pagerank_stateful(&adjacency, &params);
    truth.sort_by_key(|(id, _)| *id);

    assert_eq!(engine_ranks.len(), truth.len());
    for ((a_id, a_rank), (b_id, b_rank)) in engine_ranks.iter().zip(&truth) {
        assert_eq!(a_id, b_id);
        assert!(
            (a_rank - b_rank).abs() < 1e-9 * (1.0 + b_rank.abs()),
            "vertex {a_id}: {a_rank} vs {b_rank}"
        );
    }
}

#[test]
fn stateful_pagerank_keeps_messageless_vertices() {
    // A vertex with out-edges but no in-edges keeps its initial rank in the
    // stateful variant — the semantics Listing 6's point-wise update gives.
    let catalog = Catalog::new().with(
        "vertices",
        vec![
            // 0 → 1, 1 → 0; 2 → 0 but nothing points at 2.
            Value::tuple(vec![Value::Int(0), Value::bag(vec![Value::Int(1)])]),
            Value::tuple(vec![Value::Int(1), Value::bag(vec![Value::Int(0)])]),
            Value::tuple(vec![Value::Int(2), Value::bag(vec![Value::Int(0)])]),
        ],
    );
    let params = pagerank::PagerankParams {
        iterations: 3,
        num_pages: 3,
        ..Default::default()
    };
    let compiled = parallelize(&pagerank::stateful_program(&params), &OptimizerFlags::all());
    let run = tiny_engine(Personality::flamingo())
        .run(&compiled, &catalog)
        .expect("engine run");
    let rank2 = run.writes[pagerank::SINK]
        .iter()
        .find(|r| r.field(0).unwrap().as_int().unwrap() == 2)
        .expect("vertex 2 present")
        .field(1)
        .unwrap()
        .as_float()
        .unwrap();
    assert!(
        (rank2 - 1.0 / 3.0).abs() < 1e-12,
        "kept initial rank, got {rank2}"
    );
}

#[test]
fn stateful_cc_differential_and_agreement_with_dataflow_variant() {
    let gspec = GraphSpec {
        vertices: 80,
        avg_degree: 3,
        skew: 1.4,
        seed: 9,
    };
    let program = cc::stateful_program();
    // Listing 7 propagates along *directed* out-edges of the state's
    // neighbor lists; give it the symmetrized adjacency so connectivity is
    // undirected like the dataflow variant.
    let adjacency = graph::adjacency(&gspec);
    let mut undirected: std::collections::HashMap<i64, Vec<Value>> =
        std::collections::HashMap::new();
    for row in &adjacency {
        let v = row.field(0).unwrap().as_int().unwrap();
        undirected.entry(v).or_default();
        for n in row.field(1).unwrap().as_bag().unwrap() {
            let n_id = n.as_int().unwrap();
            undirected.entry(v).or_default().push(Value::Int(n_id));
            undirected.entry(n_id).or_default().push(Value::Int(v));
        }
    }
    let sym_vertices: Vec<Value> = undirected
        .into_iter()
        .map(|(v, ns)| Value::tuple(vec![Value::Int(v), Value::bag(ns)]))
        .collect();
    let catalog = Catalog::new().with("vertices", sym_vertices);

    for flags in [OptimizerFlags::all(), OptimizerFlags::none()] {
        assert_engine_matches_interp(
            &program,
            &catalog,
            &flags,
            &tiny_engine(Personality::sparrow()),
            0.0,
        );
    }

    // Same partition as the dataflow (min-label) variant.
    let df_catalog = cc::catalog(&gspec);
    let df_run = tiny_engine(Personality::sparrow())
        .run(
            &parallelize(&cc::program(), &OptimizerFlags::all()),
            &df_catalog,
        )
        .expect("dataflow run");
    let st_run = tiny_engine(Personality::sparrow())
        .run(&parallelize(&program, &OptimizerFlags::all()), &catalog)
        .expect("stateful run");
    let to_map = |rows: &Vec<Value>| -> std::collections::HashMap<i64, i64> {
        rows.iter()
            .map(|r| {
                (
                    r.field(0).unwrap().as_int().unwrap(),
                    r.field(1).unwrap().as_int().unwrap(),
                )
            })
            .collect()
    };
    let df = to_map(&df_run.writes[cc::SINK]);
    let st = to_map(&st_run.writes[cc::SINK]);
    assert_eq!(df.len(), st.len());
    for (v, l1) in &df {
        for (w, l2) in &df {
            assert_eq!(
                l1 == l2,
                st[v] == st[w],
                "vertices {v},{w}: dataflow and stateful partitions disagree"
            );
        }
    }
}
