//! Shared proptest generator for string-bearing scalar programs, used by the
//! cross-tier differential suites (`compiled_differential`,
//! `skew_equivalence`, `vectorized_strings`) via `#[path]` includes.
//!
//! Rows are 4-slot tuples `(Int, Str, Str, Int)` and the expression
//! strategies are *typed*: each one produces expressions of a single value
//! type over those slots, drawn from the concat-free string subset —
//! `strlen`, `contains`, equality/comparison, and `hashOf` over `Str`
//! operands, plus mixed integer arithmetic. Staying inside that subset keeps
//! most generated bodies specializable by the vectorized tier, so the
//! differential suites exercise the string kernels themselves rather than
//! only the refusal path; the deliberately chaotic row strategy then forces
//! shape aborts and scalar replays mid-stream.
//!
//! Depends only on `emma_compiler` and `proptest`, so every test crate in
//! the workspace can include it.

#![allow(dead_code)]

use emma_compiler::expr::{BuiltinFn, ScalarExpr};
use emma_compiler::value::Value;
use proptest::prelude::*;

fn x() -> ScalarExpr {
    ScalarExpr::var("x")
}

/// Short ASCII strings, biased toward shared prefixes and the literals the
/// generated `contains` calls probe for — so comparisons and containment
/// genuinely go both ways, and the empty string shows up often.
pub fn small_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[ab]{1,3}",
        "[a-e]{0,8}",
        Just("gmail.com".to_string()),
        Just("ab.cd".to_string()),
    ]
}

/// A conforming row: `(Int, Str, Str, Int)`.
pub fn string_row() -> impl Strategy<Value = Value> {
    ((-8i64..=8), small_string(), small_string(), (-3i64..=3)).prop_map(|(a, s, t, b)| {
        Value::tuple(vec![
            Value::Int(a),
            Value::str(s),
            Value::str(t),
            Value::Int(b),
        ])
    })
}

/// Mostly conforming rows with occasional shape breaks (short tuples, a
/// float where an int is expected, bare `Null`s) to force batch aborts and
/// row-at-a-time scalar replays mid-stream.
pub fn chaotic_row() -> impl Strategy<Value = Value> {
    prop_oneof![
        string_row(),
        Just(Value::Null),
        ((-8i64..=8), (-8i64..=8))
            .prop_map(|(a, b)| Value::tuple(vec![Value::Int(a), Value::Int(b)])),
        (
            (-8i64..=8),
            small_string(),
            small_string(),
            prop_oneof![Just(-2.5f64), Just(1.5)]
        )
            .prop_map(|(a, s, t, f)| Value::tuple(vec![
                Value::Int(a),
                Value::str(s),
                Value::str(t),
                Value::Float(f),
            ])),
    ]
}

/// A `Str`-typed expression. The subset is concat-free, so strings are only
/// ever read — column slots 1 and 2, or a literal.
pub fn str_expr() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        Just(x().get(1)),
        Just(x().get(2)),
        small_string().prop_map(|s| ScalarExpr::lit(Value::str(s))),
    ]
}

/// An `Int`-typed expression over the numeric and string slots. Division and
/// modulo are included deliberately: a zero divisor is the suite's main
/// in-batch error trigger.
pub fn int_expr(depth: u32) -> BoxedStrategy<ScalarExpr> {
    let leaf = prop_oneof![
        Just(x().get(0)),
        Just(x().get(3)),
        (-8i64..=8).prop_map(|i| ScalarExpr::lit(Value::Int(i))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        leaf,
        str_expr().prop_map(|s| ScalarExpr::call(BuiltinFn::StrLen, vec![s])),
        str_expr().prop_map(|s| ScalarExpr::call(BuiltinFn::HashOf, vec![s])),
        (int_expr(depth - 1), int_expr(depth - 1), 0u8..5).prop_map(|(a, b, op)| match op {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            3 => a.div(b),
            _ => a.rem(b),
        }),
        (
            bool_expr(depth - 1),
            int_expr(depth - 1),
            int_expr(depth - 1)
        )
            .prop_map(|(c, t, e)| ScalarExpr::If(Box::new(c), Box::new(t), Box::new(e))),
    ]
    .boxed()
}

/// A `Bool`-typed expression: string equality/comparison and containment,
/// integer comparisons, and the boolean connectives.
pub fn bool_expr(depth: u32) -> BoxedStrategy<ScalarExpr> {
    let strcmp = (str_expr(), str_expr(), 0u8..6).prop_map(|(a, b, op)| match op {
        0 => a.eq(b),
        1 => a.ne(b),
        2 => a.lt(b),
        3 => a.le(b),
        4 => a.gt(b),
        _ => a.ge(b),
    });
    let contains = (str_expr(), str_expr())
        .prop_map(|(h, n)| ScalarExpr::call(BuiltinFn::StrContains, vec![h, n]));
    if depth == 0 {
        return prop_oneof![strcmp, contains].boxed();
    }
    prop_oneof![
        strcmp,
        contains,
        (int_expr(depth - 1), int_expr(depth - 1), 0u8..4).prop_map(|(a, b, op)| match op {
            0 => a.eq(b),
            1 => a.lt(b),
            2 => a.ge(b),
            _ => a.ne(b),
        }),
        (bool_expr(depth - 1), bool_expr(depth - 1), any::<bool>())
            .prop_map(|(a, b, and)| if and { a.and(b) } else { a.or(b) }),
        bool_expr(depth - 1).prop_map(|a| a.not()),
    ]
    .boxed()
}

/// A Map body over the string rows: `Int`-, `Bool`-, or `Str`-typed, or a
/// two-slot tuple mixing an int with a string.
pub fn map_body() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        int_expr(2),
        bool_expr(2),
        str_expr(),
        (int_expr(1), str_expr()).prop_map(|(i, s)| ScalarExpr::Tuple(vec![i, s])),
    ]
}

/// A grouping/join key body: a string column, a derived integer, or a
/// boolean — all shapes the wide operators hash.
pub fn key_body() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![str_expr(), int_expr(1), bool_expr(1),]
}
