//! Shared helpers for the integration tests.
// Each test binary compiles this module separately and uses a subset of it.
#![allow(dead_code)]

use emma::prelude::*;

/// A fast engine configuration for tests.
pub fn tiny_engine(p: Personality) -> Engine {
    Engine::new(ClusterSpec::tiny(), p)
}

/// Recursive approximate equality on values: floats compare within a
/// relative tolerance (distributed folds combine partials in a different
/// order than the sequential reference, so float aggregates differ in the
/// last bits); bags compare as sorted sequences.
pub fn approx_eq(a: &Value, b: &Value, tol: f64) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => {
            (*x as f64 - y).abs() <= tol * (1.0 + y.abs())
        }
        (Value::Vector(x), Value::Vector(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(p, q)| (p - q).abs() <= tol * (1.0 + p.abs().max(q.abs())))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| approx_eq(p, q, tol))
        }
        (Value::Bag(x), Value::Bag(y)) => {
            let mut xs: Vec<&Value> = x.iter().collect();
            let mut ys: Vec<&Value> = y.iter().collect();
            xs.sort();
            ys.sort();
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(p, q)| approx_eq(p, q, tol))
        }
        _ => a == b,
    }
}

/// Approximate multiset equality of two row sets.
pub fn approx_rows_eq(a: &[Value], b: &[Value], tol: f64) -> bool {
    let mut xs: Vec<&Value> = a.iter().collect();
    let mut ys: Vec<&Value> = b.iter().collect();
    xs.sort();
    ys.sort();
    xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(p, q)| approx_eq(p, q, tol))
}

/// Runs a program through the interpreter and an engine with the given flags
/// and asserts that all written sinks match approximately.
pub fn assert_engine_matches_interp(
    program: &Program,
    catalog: &Catalog,
    flags: &OptimizerFlags,
    engine: &Engine,
    tol: f64,
) {
    let expected = Interp::new(catalog).run(program).expect("interp run");
    let compiled = parallelize(program, flags);
    let run = engine.run(&compiled, catalog).expect("engine run");
    assert_eq!(expected.writes.len(), run.writes.len(), "sink sets differ");
    for (sink, rows) in &expected.writes {
        let got = &run.writes[sink];
        assert!(
            approx_rows_eq(rows, got, tol),
            "sink `{sink}` differs under {flags:?}\n  interp: {} rows\n  engine: {} rows",
            rows.len(),
            got.len()
        );
    }
}

/// The flag configurations every algorithm is checked under.
pub fn flag_matrix() -> Vec<OptimizerFlags> {
    vec![
        OptimizerFlags::all(),
        OptimizerFlags::none(),
        OptimizerFlags::logical_only(),
        OptimizerFlags::all().with_fold_group_fusion(false),
        OptimizerFlags::all().with_unnest_exists(false),
        OptimizerFlags::all().with_caching(false),
        OptimizerFlags::all().with_partition_pulling(false),
        OptimizerFlags::all().with_inlining(false),
    ]
}
