//! End-to-end file-backed execution: generate a dataset, persist it as CSV,
//! load it back as a catalog (the paper's `read(url, CsvInputFormat[A])`),
//! run a full program on the engine, persist the sink, and verify the round
//! trip — the complete storage loop of Listing 4.

mod common;

use common::tiny_engine;
use emma::algorithms::kmeans;
use emma::prelude::*;
use emma_compiler::csvio;
use emma_datagen::points::{self, PointsSpec};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("emma-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn kmeans_runs_from_csv_files_and_persists_results() {
    let dir = temp_dir("kmeans");
    let spec = PointsSpec {
        n: 200,
        ..Default::default()
    };
    // 1. Persist the generated points as CSV.
    let (rows, _) = points::generate(&spec);
    csvio::write_rows(dir.join("points.csv"), &rows).expect("write input");

    // 2. Load the whole directory as the program's storage layer.
    let catalog = csvio::load_catalog(&dir).expect("load catalog");
    assert_eq!(catalog.get("points").expect("dataset").len(), 200);

    // 3. Run the quoted k-means against the file-backed catalog.
    let params = kmeans::KmeansParams::default();
    let program = kmeans::program(&params, points::initial_centroids(&spec));
    let compiled = parallelize(&program, &OptimizerFlags::all());
    let run = tiny_engine(Personality::sparrow())
        .run(&compiled, &catalog)
        .expect("engine run");

    // 4. Persist the solution sink; flatten (cid, (id, pos)) → (cid, id)
    //    since nested tuples don't fit flat CSV (same restriction as any
    //    record format).
    let flat: Vec<Value> = run.writes[kmeans::SINK]
        .iter()
        .map(|s| {
            Value::tuple(vec![
                s.field(0).expect("cid").clone(),
                s.field(1).expect("point").field(0).expect("id").clone(),
            ])
        })
        .collect();
    csvio::write_rows(dir.join("solutions.csv"), &flat).expect("write output");

    // 5. Read back and verify the round trip.
    let back = csvio::read_rows(dir.join("solutions.csv")).expect("read output");
    assert_eq!(Value::bag(back), Value::bag(flat));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn csv_round_trip_preserves_engine_results_exactly() {
    let dir = temp_dir("roundtrip");
    // A program whose output exercises every flat CSV type.
    let catalog = Catalog::new().with(
        "xs",
        (0..50)
            .map(|i| {
                Value::tuple(vec![
                    Value::Int(i % 5),
                    Value::Float(i as f64 / 3.0),
                    Value::str(format!("row{i}")),
                    Value::Bool(i % 2 == 0),
                ])
            })
            .collect(),
    );
    let program = Program::new(vec![Stmt::write(
        "out",
        BagExpr::read("xs").filter(Lambda::new(
            ["x"],
            ScalarExpr::var("x").get(0).lt(ScalarExpr::lit(3i64)),
        )),
    )]);
    let run = tiny_engine(Personality::flamingo())
        .run(&parallelize(&program, &OptimizerFlags::all()), &catalog)
        .expect("run");
    csvio::write_rows(dir.join("out.csv"), &run.writes["out"]).expect("write");
    let back = csvio::read_rows(dir.join("out.csv")).expect("read");
    assert_eq!(Value::bag(back), Value::bag(run.writes["out"].clone()));
    std::fs::remove_dir_all(&dir).ok();
}
