//! Micro-scale assertions of the cost-model effects behind every figure:
//! each paper experiment's qualitative claim, checked as a fast test. (The
//! paper-scale sweeps live in `emma-bench`; these keep the directions locked
//! under refactoring.)

mod common;

use emma::algorithms::{groupagg, spam};
use emma::prelude::*;
use emma_datagen::emails::{classifiers, EmailSpec};
use emma_datagen::KeyDistribution;

fn sim_secs(program: &Program, catalog: &Catalog, flags: &OptimizerFlags, engine: &Engine) -> f64 {
    let compiled = parallelize(program, flags);
    engine
        .run(&compiled, catalog)
        .expect("engine run")
        .stats
        .simulated_secs
}

fn workflow() -> (Program, Catalog) {
    let spec = EmailSpec {
        emails: 600,
        blacklist: 60,
        ip_domain: 600,
        body_bytes: 4_000,
        info_bytes: 2_000,
        seed: 13,
    };
    (spam::program(classifiers(3)), spam::catalog(&spec))
}

#[test]
fn fig4_direction_caching_dominates_and_baseline_loses() {
    let (program, catalog) = workflow();
    let engine = Engine::sparrow();
    let baseline = sim_secs(
        &program,
        &catalog,
        &OptimizerFlags::all()
            .with_unnest_exists(false)
            .with_caching(false)
            .with_partition_pulling(false),
        &engine,
    );
    let unnest = sim_secs(
        &program,
        &catalog,
        &OptimizerFlags::all()
            .with_caching(false)
            .with_partition_pulling(false),
        &engine,
    );
    let cached = sim_secs(
        &program,
        &catalog,
        &OptimizerFlags::all().with_partition_pulling(false),
        &engine,
    );
    let full = sim_secs(&program, &catalog, &OptimizerFlags::all(), &engine);
    assert!(unnest < baseline, "unnesting helps: {unnest} < {baseline}");
    assert!(cached < unnest, "caching helps more: {cached} < {unnest}");
    assert!(full <= cached * 1.05, "partition+cache at least as good");
}

#[test]
fn fig4_direction_flink_gains_more_from_unnesting() {
    let (program, catalog) = workflow();
    let baseline_flags = OptimizerFlags::all()
        .with_unnest_exists(false)
        .with_caching(false)
        .with_partition_pulling(false);
    let unnest_flags = OptimizerFlags::all()
        .with_caching(false)
        .with_partition_pulling(false);
    let spark = Engine::sparrow();
    let flink = Engine::flamingo();
    let spark_speedup = sim_secs(&program, &catalog, &baseline_flags, &spark)
        / sim_secs(&program, &catalog, &unnest_flags, &spark);
    let flink_speedup = sim_secs(&program, &catalog, &baseline_flags, &flink)
        / sim_secs(&program, &catalog, &unnest_flags, &flink);
    assert!(
        flink_speedup > spark_speedup,
        "flink {flink_speedup:.2}x vs spark {spark_speedup:.2}x"
    );
}

#[test]
fn fig5_direction_pareto_punishes_unfused_spark_hardest() {
    let program = groupagg::program();
    let spec = emma_engine::ClusterSpec::paper_scaled().with_mem_per_worker(64 * 1024);
    let engine = Engine::new(spec, Personality::sparrow());
    let fused = OptimizerFlags::all();
    let unfused = OptimizerFlags::all().with_fold_group_fusion(false);
    let mut ratios = Vec::new();
    for dist in KeyDistribution::all() {
        let catalog = groupagg::catalog(20_000, 200, dist, 3);
        let f = sim_secs(&program, &catalog, &fused, &engine);
        let u = sim_secs(&program, &catalog, &unfused, &engine);
        assert!(u > f, "{}: unfused {u} must exceed fused {f}", dist.name());
        ratios.push((dist, u / f));
    }
    let ratio_of = |d: KeyDistribution| ratios.iter().find(|(x, _)| *x == d).unwrap().1;
    assert!(
        ratio_of(KeyDistribution::Pareto) > ratio_of(KeyDistribution::Uniform) * 2.0,
        "hot-key skew must dominate: {ratios:?}"
    );
}

#[test]
fn fig5_direction_flink_degrades_gracefully_vs_spark_on_skew() {
    let program = groupagg::program();
    let spec = emma_engine::ClusterSpec::paper_scaled().with_mem_per_worker(64 * 1024);
    let catalog = groupagg::catalog(20_000, 200, KeyDistribution::Pareto, 3);
    let unfused = OptimizerFlags::all().with_fold_group_fusion(false);
    let spark = sim_secs(
        &program,
        &catalog,
        &unfused,
        &Engine::new(spec, Personality::sparrow()),
    );
    let flink = sim_secs(
        &program,
        &catalog,
        &unfused,
        &Engine::new(spec, Personality::flamingo()),
    );
    assert!(
        spark > flink * 3.0,
        "hash-agg collapse: spark {spark} ≫ flink {flink}"
    );
}

#[test]
fn iterative_direction_spark_caching_beats_flink_caching() {
    // Flink caches to HDFS: the re-read eats most of the benefit.
    let gspec = emma_datagen::graph::GraphSpec {
        vertices: 4_000,
        avg_degree: 10,
        ..Default::default()
    };
    let params = emma::algorithms::pagerank::PagerankParams {
        iterations: 6,
        num_pages: gspec.vertices,
        ..Default::default()
    };
    let program = emma::algorithms::pagerank::program(&params);
    let catalog = emma::algorithms::pagerank::catalog(&gspec);
    let nocache = OptimizerFlags::all()
        .with_caching(false)
        .with_partition_pulling(false);
    let cache = OptimizerFlags::all();
    let spark_gain = sim_secs(&program, &catalog, &nocache, &Engine::sparrow())
        / sim_secs(&program, &catalog, &cache, &Engine::sparrow());
    let flink_gain = sim_secs(&program, &catalog, &nocache, &Engine::flamingo())
        / sim_secs(&program, &catalog, &cache, &Engine::flamingo());
    assert!(
        spark_gain > flink_gain,
        "spark {spark_gain:.2}x vs flink {flink_gain:.2}x"
    );
}

#[test]
fn tpch_direction_logical_optimizations_are_the_difference() {
    let catalog = emma::algorithms::tpch::catalog(&emma_datagen::tpch::TpchSpec {
        scale: 2.0,
        seed: 3,
    });
    let spec = emma_engine::ClusterSpec::paper_scaled().with_mem_per_worker(32 * 1024);
    let engine = Engine::new(spec, Personality::sparrow());
    for program in [
        emma::algorithms::tpch::q1_program(),
        emma::algorithms::tpch::q4_program(),
    ] {
        let opt = sim_secs(&program, &catalog, &OptimizerFlags::all(), &engine);
        let unopt = sim_secs(
            &program,
            &catalog,
            &OptimizerFlags::all()
                .with_fold_group_fusion(false)
                .with_unnest_exists(false),
            &engine,
        );
        assert!(
            unopt > opt * 5.0,
            "logical optimizations must matter: {unopt} vs {opt}"
        );
    }
}
