//! The programs evaluated in the paper, written once against the embedded
//! language.
//!
//! Each module builds a quoted [`Program`](emma_compiler::program::Program)
//! plus the matching [`Catalog`](emma_compiler::interp::Catalog) from
//! `emma-datagen` inputs, so examples, integration tests, and the
//! figure/table benchmark harness all run the *same* code — the reuse the
//! paper's "write once, debug locally, parallelize transparently" story is
//! about.
//!
//! | Module | Paper reference |
//! |---|---|
//! | [`kmeans`] | Listing 4, Section 5.2 |
//! | [`pagerank`] | Listing 6 (dataflow form), Section 5.2 |
//! | [`connected_components`] | Listing 7 (dataflow form) |
//! | [`spam`] | Listing 5, Section 5.1 / Figure 4 |
//! | [`tpch`] | Listings 8–9, Section 5.2 |
//! | [`groupagg`] | Appendix B / Figure 5 |

pub mod connected_components;
pub mod groupagg;
pub mod kmeans;
pub mod pagerank;
pub mod spam;
pub mod tpch;
