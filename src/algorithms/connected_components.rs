//! Connected Components (paper, Listing 7).
//!
//! The quoted dataflow variant iterates label propagation to a fixpoint:
//! each round, every vertex proposes its current component id to its
//! neighbors, the minimum proposal per vertex wins (fold-group fusion →
//! `aggBy`), and the loop stops when a round changes nothing — the
//! termination test `newComps.minus(comps).count() == 0` is the semi-naive
//! "delta is empty" condition of Listing 7 expressed with plain bag
//! operators.
//!
//! [`local_cc_stateful`] is Listing 7 verbatim against the typed
//! `StatefulBag` layer (max-convention, as in the paper) and serves as
//! ground truth in tests.

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::expr::{FoldOp, Lambda, ScalarExpr};
use emma_compiler::interp::Catalog;
use emma_compiler::program::{Program, Stmt};
use emma_core::{DataBag, Keyed, StatefulBag};
use emma_datagen::graph::{self, GraphSpec};

/// The sink the final component assignment is written to.
pub const SINK: &str = "components";

/// Builds the quoted Connected Components program over catalog datasets
/// `"vertices"` (adjacency form) and `"edges"` (undirected edge pairs).
pub fn program() -> Program {
    // candidates = (for (e <- edges; c <- comps; if e.src == c.id)
    //               yield (e.dst, c.component)).plus(comps)
    let candidates = BagExpr::var("edges")
        .flat_map(BagLambda::new(
            "e",
            BagExpr::var("comps")
                .filter(Lambda::new(
                    ["c"],
                    ScalarExpr::var("e").get(0).eq(ScalarExpr::var("c").get(0)),
                ))
                .map(Lambda::new(
                    ["c"],
                    ScalarExpr::Tuple(vec![
                        ScalarExpr::var("e").get(1),
                        ScalarExpr::var("c").get(1),
                    ]),
                )),
        ))
        .plus(BagExpr::var("comps"));
    // newComps = for (g <- candidates.groupBy(_.0)) yield (g.key, min(g.values))
    let new_comps = candidates
        .group_by(Lambda::new(["t"], ScalarExpr::var("t").get(0)))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::var("g").get(0),
                BagExpr::of_value(ScalarExpr::var("g").get(1))
                    .map(Lambda::new(["t"], ScalarExpr::var("t").get(1)))
                    .fold(FoldOp::min()),
            ]),
        ));

    Program::new(vec![
        Stmt::val("edges", BagExpr::read("edges")),
        Stmt::var(
            "comps",
            BagExpr::read("vertices").map(Lambda::new(
                ["v"],
                ScalarExpr::Tuple(vec![
                    ScalarExpr::var("v").get(0),
                    ScalarExpr::var("v").get(0),
                ]),
            )),
        ),
        Stmt::var("changed", ScalarExpr::lit(1i64)),
        Stmt::while_loop(
            ScalarExpr::var("changed").gt(ScalarExpr::lit(0i64)),
            vec![
                Stmt::val("newComps", new_comps),
                Stmt::assign(
                    "changed",
                    BagExpr::var("newComps")
                        .minus(BagExpr::var("comps"))
                        .count(),
                ),
                Stmt::assign("comps", BagExpr::var("newComps")),
            ],
        ),
        Stmt::write(SINK, BagExpr::var("comps")),
    ])
}

/// Builds the catalog: adjacency rows plus a symmetrized edge list (label
/// propagation needs undirected connectivity).
pub fn catalog(spec: &GraphSpec) -> Catalog {
    let adjacency = graph::adjacency(spec);
    let mut edges = graph::edges(&adjacency);
    let reversed: Vec<_> = edges
        .iter()
        .map(|e| {
            emma_compiler::value::Value::tuple(vec![
                e.field(1).expect("dst").clone(),
                e.field(0).expect("src").clone(),
            ])
        })
        .collect();
    edges.extend(reversed);
    Catalog::new()
        .with("vertices", adjacency)
        .with("edges", edges)
}

/// Listing 7 *verbatim in the quoted language*: semi-naive label
/// propagation over a stateful bag of `(id, neighbors, component)` triples,
/// driven by the changed delta (`while (not delta.empty())`). Uses the
/// paper's max-label convention.
pub fn stateful_program() -> Program {
    // msgs = for (s <- delta; n <- s.neighborIDs) yield Message(n, s.component)
    let msgs = BagExpr::var("delta").flat_map(BagLambda::new(
        "s",
        BagExpr::of_value(ScalarExpr::var("s").get(1)).map(Lambda::new(
            ["n"],
            ScalarExpr::Tuple(vec![ScalarExpr::var("n"), ScalarExpr::var("s").get(2)]),
        )),
    ));
    // updates = for (g <- msgs.groupBy(_.receiver))
    //           yield Updt(g.key, g.values.map(_.component).max())
    let updates = msgs
        .group_by(Lambda::new(["m"], ScalarExpr::var("m").get(0)))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::var("g").get(0),
                BagExpr::of_value(ScalarExpr::var("g").get(1))
                    .map(Lambda::new(["m"], ScalarExpr::var("m").get(1)))
                    .fold(FoldOp::max()),
            ]),
        ));

    Program::new(vec![
        // delta = for (v <- vertices) yield State(v.id, v.neighborIDs, v.id)
        Stmt::val(
            "init",
            BagExpr::read("vertices").map(Lambda::new(
                ["v"],
                ScalarExpr::Tuple(vec![
                    ScalarExpr::var("v").get(0),
                    ScalarExpr::var("v").get(1),
                    ScalarExpr::var("v").get(0),
                ]),
            )),
        ),
        Stmt::stateful(
            "state",
            BagExpr::var("init"),
            Lambda::new(["s"], ScalarExpr::var("s").get(0)),
        ),
        Stmt::var("delta", BagExpr::var("init")),
        Stmt::while_loop(
            ScalarExpr::Fold(
                Box::new(BagExpr::var("delta")),
                Box::new(FoldOp::is_empty()),
            )
            .not(),
            vec![
                Stmt::val("updates", updates),
                // delta = state.update(updates)((s, u) =>
                //   if (u.component > s.component)
                //     Some(s.copy(component = u.component)) else None)
                Stmt::stateful_update(
                    "state",
                    "delta",
                    BagExpr::var("updates"),
                    Lambda::new(["u"], ScalarExpr::var("u").get(0)),
                    Lambda::new(
                        ["s", "u"],
                        ScalarExpr::If(
                            Box::new(ScalarExpr::var("u").get(1).gt(ScalarExpr::var("s").get(2))),
                            Box::new(ScalarExpr::Tuple(vec![
                                ScalarExpr::var("s").get(0),
                                ScalarExpr::var("s").get(1),
                                ScalarExpr::var("u").get(1),
                            ])),
                            Box::new(ScalarExpr::Lit(emma_compiler::value::Value::Null)),
                        ),
                    ),
                ),
            ],
        ),
        Stmt::write(
            SINK,
            BagExpr::var("state").map(Lambda::new(
                ["s"],
                ScalarExpr::Tuple(vec![
                    ScalarExpr::var("s").get(0),
                    ScalarExpr::var("s").get(2),
                ]),
            )),
        ),
    ])
}

/// Per-vertex state for the typed Listing 7 variant.
#[derive(Clone, Debug, PartialEq)]
pub struct CcState {
    /// Vertex id.
    pub id: i64,
    /// Undirected neighbor ids.
    pub neighbors: Vec<i64>,
    /// Current component label.
    pub component: i64,
}

impl Keyed for CcState {
    type Key = i64;
    fn key(&self) -> i64 {
        self.id
    }
}

/// A label-propagation message.
#[derive(Clone, Debug)]
pub struct CcMessage {
    /// Receiver vertex id.
    pub receiver: i64,
    /// Proposed component label.
    pub component: i64,
}

impl Keyed for CcMessage {
    type Key = i64;
    fn key(&self) -> i64 {
        self.receiver
    }
}

/// Listing 7 verbatim against the typed layer: semi-naive iteration driven
/// by the changed delta of a `StatefulBag` (max-label convention, like the
/// paper). Returns `(id, component)`.
pub fn local_cc_stateful(adjacency: &[(i64, Vec<i64>)]) -> Vec<(i64, i64)> {
    let initial = DataBag::from_seq(adjacency.iter().map(|(id, nbrs)| CcState {
        id: *id,
        neighbors: nbrs.clone(),
        component: *id,
    }));
    let mut state = StatefulBag::new(initial.clone());
    let mut delta = initial;
    while !delta.is_empty() {
        let msgs: DataBag<CcMessage> = delta.flat_map(|s| {
            DataBag::from_seq(s.neighbors.iter().map(|n| CcMessage {
                receiver: *n,
                component: s.component,
            }))
        });
        let updates: DataBag<CcMessage> = msgs.group_by(|m| m.receiver).map(|g| CcMessage {
            receiver: g.key,
            component: g
                .values
                .max_by(|m| m.component)
                .expect("non-empty group")
                .component,
        });
        delta = state.update_with_messages(updates, |s, u| {
            if u.component > s.component {
                Some(CcState {
                    component: u.component,
                    ..s.clone()
                })
            } else {
                None
            }
        });
    }
    state.bag().map(|s| (s.id, s.component)).fetch()
}
