//! K-means clustering (paper, Listing 4).
//!
//! Lloyd's algorithm written exactly in the paper's style: nothing in the
//! core loop suggests parallel execution — the nearest-centroid search is a
//! `min_by` fold over the (driver-bound) centroid bag inside a `map` UDF
//! (which the engine turns into a broadcast), the centroid recomputation is
//! a `groupBy` + folds (which fold-group fusion turns into an `aggBy`), and
//! the convergence check is an ordinary `while` over a scalar computed by a
//! join-shaped comprehension.

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::expr::{BuiltinFn, FoldOp, Lambda, ScalarExpr};
use emma_compiler::interp::Catalog;
use emma_compiler::program::{Program, Stmt};
use emma_compiler::value::Value;
use emma_core::DataBag;
use emma_datagen::points::{self, PointsSpec};

/// The sink the final assignment is written to.
pub const SINK: &str = "solutions";

/// Parameters for the quoted k-means program.
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    /// Convergence threshold on total centroid movement.
    pub epsilon: f64,
    /// Dimensionality (must match the dataset).
    pub dims: usize,
}

impl Default for KmeansParams {
    fn default() -> Self {
        KmeansParams {
            epsilon: 0.01,
            dims: 2,
        }
    }
}

/// `p.1` ⟼ position vector of a point/centroid tuple `(id, pos)`.
fn pos(e: ScalarExpr) -> ScalarExpr {
    e.get(1)
}

/// The nearest-centroid assignment `(cid, point)` for the bound point `p`,
/// searching a driver-bound centroid bag.
fn assign_expr(ctrds_var: &str) -> ScalarExpr {
    let nearest = ScalarExpr::Fold(
        Box::new(BagExpr::var(ctrds_var)),
        Box::new(FoldOp::min_by(Lambda::new(
            ["c"],
            ScalarExpr::call(
                BuiltinFn::Dist,
                vec![pos(ScalarExpr::var("c")), pos(ScalarExpr::var("p"))],
            ),
        ))),
    );
    ScalarExpr::Tuple(vec![nearest.get(0), ScalarExpr::var("p")])
}

/// Builds the quoted k-means program over catalog dataset `"points"`.
pub fn program(params: &KmeansParams, initial_centroids: Vec<Value>) -> Program {
    let dims = params.dims;
    // clusters = points.map(p => (nearestCid, p)).groupBy(_.0)
    let clusters = BagExpr::var("points")
        .map(Lambda::new(["p"], assign_expr("ctrds")))
        .group_by(Lambda::new(["s"], ScalarExpr::var("s").get(0)));
    // newCtrds = for (clr <- clusters) yield (clr.key, sum(pos) / count)
    let group_values = |e: ScalarExpr| BagExpr::of_value(e);
    let new_ctrds = clusters.map(Lambda::new(
        ["g"],
        ScalarExpr::Tuple(vec![
            ScalarExpr::var("g").get(0),
            ScalarExpr::call(
                BuiltinFn::VecDiv,
                vec![
                    group_values(ScalarExpr::var("g").get(1))
                        .map(Lambda::new(["s"], pos(ScalarExpr::var("s").get(1))))
                        .fold(FoldOp::vec_sum(dims)),
                    group_values(ScalarExpr::var("g").get(1)).count(),
                ],
            ),
        ]),
    ));
    // change = (for (x <- ctrds; y <- newCtrds; if x.id == y.id)
    //           yield dist(x, y)).sum()
    let change = BagExpr::var("ctrds")
        .flat_map(BagLambda::new(
            "x",
            BagExpr::var("newCtrds")
                .filter(Lambda::new(
                    ["y"],
                    ScalarExpr::var("x").get(0).eq(ScalarExpr::var("y").get(0)),
                ))
                .map(Lambda::new(
                    ["y"],
                    ScalarExpr::call(
                        BuiltinFn::Dist,
                        vec![pos(ScalarExpr::var("x")), pos(ScalarExpr::var("y"))],
                    ),
                )),
        ))
        .sum();

    Program::new(vec![
        Stmt::val("points", BagExpr::read("points")),
        Stmt::var("ctrds", BagExpr::Values(initial_centroids)),
        Stmt::var("change", ScalarExpr::lit(f64::MAX)),
        Stmt::while_loop(
            ScalarExpr::var("change").gt(ScalarExpr::lit(params.epsilon)),
            vec![
                Stmt::val("newCtrds", new_ctrds),
                Stmt::assign("change", change),
                Stmt::assign("ctrds", BagExpr::var("newCtrds")),
            ],
        ),
        Stmt::write(
            SINK,
            BagExpr::var("points").map(Lambda::new(["p"], assign_expr("ctrds"))),
        ),
    ])
}

/// Builds the catalog for a dataset spec.
pub fn catalog(spec: &PointsSpec) -> Catalog {
    let (rows, _) = points::generate(spec);
    Catalog::new().with("points", rows)
}

/// The paper's "host language execution": the same algorithm against the
/// typed, local [`DataBag`] — used for incremental development and as the
/// ground truth in tests. Returns the final centroids as `(cid, pos)`.
pub fn local_kmeans(
    pts: &[(i64, Vec<f64>)],
    initial: &[(i64, Vec<f64>)],
    epsilon: f64,
) -> Vec<(i64, Vec<f64>)> {
    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
    let points = DataBag::from_seq(pts.to_vec());
    let mut ctrds: Vec<(i64, Vec<f64>)> = initial.to_vec();
    let mut change = f64::MAX;
    while change > epsilon {
        let clusters = points
            .map(|p| {
                let nearest = ctrds
                    .iter()
                    .min_by(|a, b| dist(&a.1, &p.1).total_cmp(&dist(&b.1, &p.1)))
                    .expect("non-empty centroids");
                (nearest.0, p.clone())
            })
            .group_by(|s| s.0);
        let new_ctrds: Vec<(i64, Vec<f64>)> = clusters
            .map(|g| {
                let dims = g.values.iter().next().expect("non-empty group").1 .1.len();
                let sum = g.values.fold(
                    vec![0.0; dims],
                    |s| s.1 .1.clone(),
                    |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect(),
                );
                let cnt = g.values.count() as f64;
                (g.key, sum.into_iter().map(|x| x / cnt).collect())
            })
            .fetch();
        change = new_ctrds
            .iter()
            .map(|(id, p)| {
                ctrds
                    .iter()
                    .filter(|(cid, _)| cid == id)
                    .map(|(_, q)| dist(p, q))
                    .sum::<f64>()
            })
            .sum();
        ctrds = new_ctrds;
    }
    ctrds
}
