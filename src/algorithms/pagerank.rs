//! PageRank (paper, Listing 6 and Section 5.2).
//!
//! The paper's Listing 6 refines a `StatefulBag` of ranks; the distributed
//! form here is the equivalent pure-dataflow variant: per iteration, each
//! vertex's rank is split among its out-neighbors (a join between the
//! adjacency list and the current ranks followed by a dependent generator
//! over the neighbor bag — which lowering merges as a `flatMap`), incoming
//! contributions are summed per vertex (fold-group fusion turns this into an
//! `aggBy`), and the damping formula produces the next rank vector.
//!
//! Vertices with no in-edges receive no messages and drop to the damping
//! floor implicitly — the standard dataflow simplification of Listing 6's
//! point-wise state update (documented in DESIGN.md).
//!
//! The typed `StatefulBag` form of Listing 6 itself is demonstrated in
//! [`local_pagerank_stateful`], which tests use as ground truth.

use emma_compiler::bag_expr::{BagExpr, BagLambda};
use emma_compiler::expr::{FoldOp, Lambda, ScalarExpr};
use emma_compiler::interp::Catalog;
use emma_compiler::program::{Program, Stmt};
use emma_core::{DataBag, Keyed, StatefulBag};
use emma_datagen::graph::{self, GraphSpec};

/// The sink the final ranks are written to.
pub const SINK: &str = "ranks";

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PagerankParams {
    /// Damping factor (the paper's `DF`).
    pub damping: f64,
    /// Fixed iteration count (Listing 6 iterates a fixed number of times).
    pub iterations: i64,
    /// Number of vertices (`numPages` in the rank formula).
    pub num_pages: usize,
}

impl Default for PagerankParams {
    fn default() -> Self {
        PagerankParams {
            damping: 0.85,
            iterations: 10,
            num_pages: 1_000,
        }
    }
}

/// Builds the quoted PageRank program over catalog dataset `"vertices"`
/// (adjacency form `(id, {{neighbors}})`).
pub fn program(params: &PagerankParams) -> Program {
    let n = params.num_pages as f64;
    let df = params.damping;
    // messages = for (v <- vertices; r <- ranks; if v.id == r.id;
    //                 nb <- v.neighbors)
    //            yield (nb, r.rank / v.neighbors.count())
    let messages = BagExpr::var("vertices").flat_map(BagLambda::new(
        "v",
        BagExpr::var("ranks")
            .filter(Lambda::new(
                ["r"],
                ScalarExpr::var("v").get(0).eq(ScalarExpr::var("r").get(0)),
            ))
            .flat_map(BagLambda::new(
                "r",
                BagExpr::of_value(ScalarExpr::var("v").get(1)).map(Lambda::new(
                    ["nb"],
                    ScalarExpr::Tuple(vec![
                        ScalarExpr::var("nb"),
                        ScalarExpr::var("r")
                            .get(1)
                            .div(BagExpr::of_value(ScalarExpr::var("v").get(1)).count()),
                    ]),
                )),
            )),
    ));
    // updates = for (g <- messages.groupBy(_.vertex))
    //           yield (g.key, (1 - DF)/numPages + DF * sum(g.values.rank))
    let updates = messages
        .group_by(Lambda::new(["m"], ScalarExpr::var("m").get(0)))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::var("g").get(0),
                ScalarExpr::lit((1.0 - df) / n).add(
                    ScalarExpr::lit(df).mul(
                        BagExpr::of_value(ScalarExpr::var("g").get(1))
                            .map(Lambda::new(["m"], ScalarExpr::var("m").get(1)))
                            .fold(FoldOp::sum()),
                    ),
                ),
            ]),
        ));

    Program::new(vec![
        Stmt::val("vertices", BagExpr::read("vertices")),
        Stmt::var(
            "ranks",
            BagExpr::var("vertices").map(Lambda::new(
                ["v"],
                ScalarExpr::Tuple(vec![ScalarExpr::var("v").get(0), ScalarExpr::lit(1.0 / n)]),
            )),
        ),
        Stmt::var("iter", ScalarExpr::lit(0i64)),
        Stmt::while_loop(
            ScalarExpr::var("iter").lt(ScalarExpr::lit(params.iterations)),
            vec![
                Stmt::assign("ranks", updates),
                Stmt::assign("iter", ScalarExpr::var("iter").add(ScalarExpr::lit(1i64))),
            ],
        ),
        Stmt::write(SINK, BagExpr::var("ranks")),
    ])
}

/// Builds the catalog for a graph spec.
pub fn catalog(spec: &GraphSpec) -> Catalog {
    Catalog::new().with("vertices", graph::adjacency(spec))
}

/// Listing 6 *verbatim in the quoted language*: a stateful bag of
/// `(id, rank)` pairs refined with point-wise message updates. Unlike the
/// pure-dataflow [`program`], message-less vertices keep their previous rank
/// — exactly the paper's update semantics.
pub fn stateful_program(params: &PagerankParams) -> Program {
    let n = params.num_pages as f64;
    let df = params.damping;
    // messages = for (p <- ranks.bag(); v <- vertices; if p.id == v.vertex;
    //                 nb <- v.neighbors)
    //            yield RankMessage(nb, p.rank / v.neighbors.count())
    let messages = BagExpr::var("ranks").flat_map(BagLambda::new(
        "p",
        BagExpr::var("vertices")
            .filter(Lambda::new(
                ["v"],
                ScalarExpr::var("p").get(0).eq(ScalarExpr::var("v").get(0)),
            ))
            .flat_map(BagLambda::new(
                "v",
                BagExpr::of_value(ScalarExpr::var("v").get(1)).map(Lambda::new(
                    ["nb"],
                    ScalarExpr::Tuple(vec![
                        ScalarExpr::var("nb"),
                        ScalarExpr::var("p")
                            .get(1)
                            .div(BagExpr::of_value(ScalarExpr::var("v").get(1)).count()),
                    ]),
                )),
            )),
    ));
    // updates = for (g <- messages.groupBy(_.vertex))
    //           yield VertexWithRank(g.key, (1-DF)/numPages + DF * inRanks)
    let updates = messages
        .group_by(Lambda::new(["m"], ScalarExpr::var("m").get(0)))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::var("g").get(0),
                ScalarExpr::lit((1.0 - df) / n).add(
                    ScalarExpr::lit(df).mul(
                        BagExpr::of_value(ScalarExpr::var("g").get(1))
                            .map(Lambda::new(["m"], ScalarExpr::var("m").get(1)))
                            .fold(FoldOp::sum()),
                    ),
                ),
            ]),
        ));

    Program::new(vec![
        Stmt::val("vertices", BagExpr::read("vertices")),
        // ranks = stateful(vertices.map(v => (v.id, 1/N)))
        Stmt::stateful(
            "ranks",
            BagExpr::var("vertices").map(Lambda::new(
                ["v"],
                ScalarExpr::Tuple(vec![ScalarExpr::var("v").get(0), ScalarExpr::lit(1.0 / n)]),
            )),
            Lambda::new(["r"], ScalarExpr::var("r").get(0)),
        ),
        Stmt::var("iter", ScalarExpr::lit(0i64)),
        Stmt::while_loop(
            ScalarExpr::var("iter").lt(ScalarExpr::lit(params.iterations)),
            vec![
                Stmt::val("updates", updates),
                // ranks.update(updates)((s, u) => Some(s.copy(rank = u.rank)))
                Stmt::stateful_update(
                    "ranks",
                    "changed",
                    BagExpr::var("updates"),
                    Lambda::new(["u"], ScalarExpr::var("u").get(0)),
                    Lambda::new(
                        ["s", "u"],
                        ScalarExpr::Tuple(vec![
                            ScalarExpr::var("s").get(0),
                            ScalarExpr::var("u").get(1),
                        ]),
                    ),
                ),
                Stmt::assign("iter", ScalarExpr::var("iter").add(ScalarExpr::lit(1i64))),
            ],
        ),
        Stmt::write(SINK, BagExpr::var("ranks")),
    ])
}

/// A vertex state record for the typed `StatefulBag` variant.
#[derive(Clone, Debug, PartialEq)]
pub struct RankState {
    /// Vertex id.
    pub id: i64,
    /// Out-neighbor ids.
    pub neighbors: Vec<i64>,
    /// Current rank.
    pub rank: f64,
}

impl Keyed for RankState {
    type Key = i64;
    fn key(&self) -> i64 {
        self.id
    }
}

/// A rank message for the typed variant.
#[derive(Clone, Debug)]
pub struct RankMessage {
    /// Receiving vertex.
    pub vertex: i64,
    /// Contributed rank.
    pub rank: f64,
}

impl Keyed for RankMessage {
    type Key = i64;
    fn key(&self) -> i64 {
        self.vertex
    }
}

/// Listing 6, verbatim against the typed local layer: a `StatefulBag` of
/// per-vertex state refined with point-wise updates. Returns `(id, rank)`.
///
/// This variant *does* keep message-less vertices at their previous rank,
/// exactly like the paper's update semantics; the dataflow variant above
/// drops them to the damping floor (see module docs).
pub fn local_pagerank_stateful(
    adjacency: &[(i64, Vec<i64>)],
    params: &PagerankParams,
) -> Vec<(i64, f64)> {
    let n = params.num_pages as f64;
    let df = params.damping;
    let initial = DataBag::from_seq(adjacency.iter().map(|(id, nbrs)| RankState {
        id: *id,
        neighbors: nbrs.clone(),
        rank: 1.0 / n,
    }));
    let mut ranks = StatefulBag::new(initial);
    for _ in 0..params.iterations {
        let messages: DataBag<RankMessage> = ranks.bag().flat_map(|s| {
            let share = s.rank / s.neighbors.len().max(1) as f64;
            DataBag::from_seq(s.neighbors.iter().map(|nb| RankMessage {
                vertex: *nb,
                rank: share,
            }))
        });
        let updates: DataBag<RankMessage> = messages.group_by(|m| m.vertex).map(|g| RankMessage {
            vertex: g.key,
            rank: (1.0 - df) / n + df * g.values.sum_by(|m| m.rank),
        });
        ranks.update_with_messages(updates, |s, u| {
            Some(RankState {
                rank: u.rank,
                ..s.clone()
            })
        });
    }
    ranks.bag().map(|s| (s.id, s.rank)).fetch()
}
