//! TPC-H Q1 and Q4 (paper, Listings 8–9 and Section 5.2).
//!
//! Q1 is the fold-group-fusion showcase: six aggregates plus three averages
//! are written as independent folds over the group values and the rewrite
//! fuses them into one `aggBy` slot tuple — in other dataflow APIs the
//! programmer performs this banana-split + combiner rewrite by hand
//! (Listing 1, lines 5–6).
//!
//! Q4 additionally exercises exists-unnesting: the correlated `EXISTS`
//! subquery stays at SQL's level of declarativity and the compiler decides
//! the evaluation strategy (semi-join with a pushed-down lineitem filter).

use emma_compiler::bag_expr::BagExpr;
use emma_compiler::expr::{Lambda, ScalarExpr};
use emma_compiler::interp::Catalog;
use emma_compiler::program::{Program, Stmt};
use emma_datagen::tpch::{self, lineitem as li, orders as ord, TpchSpec};

/// Q1's result sink.
pub const Q1_SINK: &str = "q1";
/// Q4's result sink.
pub const Q4_SINK: &str = "q4";

fn l(field: usize) -> ScalarExpr {
    ScalarExpr::var("l").get(field)
}

/// A fold over the group's values projected through `f`.
fn group_sum(f: ScalarExpr) -> ScalarExpr {
    BagExpr::of_value(ScalarExpr::var("g").get(1))
        .map(Lambda::new(["l"], f))
        .sum()
}

fn group_count() -> ScalarExpr {
    BagExpr::of_value(ScalarExpr::var("g").get(1)).count()
}

/// Builds TPC-H Q1 over catalog dataset `"lineitem"` (Listing 8).
pub fn q1_program() -> Program {
    let filtered = BagExpr::read("lineitem").filter(Lambda::new(
        ["l"],
        l(li::SHIP_DATE).le(ScalarExpr::lit(tpch::Q1_SHIP_CUTOFF)),
    ));
    let one = || ScalarExpr::lit(1.0f64);
    let disc_price = || l(li::EXTENDED_PRICE).mul(one().sub(l(li::DISCOUNT)));
    let charge = || disc_price().mul(one().add(l(li::TAX)));
    let result = filtered
        .group_by(Lambda::new(
            ["l"],
            ScalarExpr::Tuple(vec![l(li::RETURN_FLAG), l(li::LINE_STATUS)]),
        ))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::var("g").get(0).get(0), // returnFlag
                ScalarExpr::var("g").get(0).get(1), // lineStatus
                group_sum(l(li::QUANTITY)),         // sum_qty
                group_sum(l(li::EXTENDED_PRICE)),   // sum_base_price
                group_sum(disc_price()),            // sum_disc_price
                group_sum(charge()),                // sum_charge
                // Averages as ratios of folds, exactly like Listing 8.
                group_sum(l(li::QUANTITY)).div(group_count()), // avg_qty
                group_sum(l(li::EXTENDED_PRICE)).div(group_count()), // avg_price
                group_sum(l(li::DISCOUNT)).div(group_count()), // avg_disc
                group_count(),                                 // count_order
            ]),
        ));
    Program::new(vec![Stmt::write(Q1_SINK, result)])
}

/// Builds TPC-H Q4 over catalog datasets `"orders"` and `"lineitem"`
/// (Listing 9).
pub fn q4_program() -> Program {
    // join = for (o <- orders
    //             if o.orderDate >= dateMin && o.orderDate < dateMax
    //             && lineitems.exists(li => li.orderKey == o.orderKey
    //                                    && li.commitDate < li.receiptDate))
    //        yield (o.orderPriority, 1)
    let o = |field: usize| ScalarExpr::var("o").get(field);
    let exists = BagExpr::read("lineitem").exists(Lambda::new(
        ["l"],
        l(li::ORDER_KEY)
            .eq(o(ord::ORDER_KEY))
            .and(l(li::COMMIT_DATE).lt(l(li::RECEIPT_DATE))),
    ));
    let join = BagExpr::read("orders")
        .filter(Lambda::new(
            ["o"],
            o(ord::ORDER_DATE)
                .ge(ScalarExpr::lit(tpch::Q4_DATE_MIN))
                .and(o(ord::ORDER_DATE).lt(ScalarExpr::lit(tpch::Q4_DATE_MAX)))
                .and(exists),
        ))
        .map(Lambda::new(
            ["o"],
            ScalarExpr::Tuple(vec![o(ord::PRIORITY), ScalarExpr::lit(1i64)]),
        ));
    // rslt = for (g <- join.groupBy(_.orderPriority))
    //        yield (g.key, g.values.count())
    let result = join
        .group_by(Lambda::new(["t"], ScalarExpr::var("t").get(0)))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![ScalarExpr::var("g").get(0), group_count()]),
        ));
    Program::new(vec![Stmt::write(Q4_SINK, result)])
}

/// Builds the catalog for a TPC-H spec.
pub fn catalog(spec: &TpchSpec) -> Catalog {
    let (lineitem_rows, orders_rows) = tpch::generate(spec);
    Catalog::new()
        .with("lineitem", lineitem_rows)
        .with("orders", orders_rows)
}
