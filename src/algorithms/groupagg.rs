//! The group-aggregation query of the fold-group-fusion study
//! (paper, Appendix B / Figure 5):
//!
//! ```text
//! for (g <- dataset.groupBy(_.key)) yield (g.key, g.values.map(_.value).min())
//! ```
//!
//! With fusion, this compiles to an `aggBy` with combiner-side partial
//! minima: exactly one aggregated tuple per key leaves each mapper, so the
//! query scales flatly with the degree of parallelism regardless of the key
//! distribution. Without fusion, the `groupBy` materializes full groups on
//! the reducers — and a Pareto-distributed key (~35 % of tuples on one key)
//! overloads a single reducer.

use emma_compiler::bag_expr::BagExpr;
use emma_compiler::expr::{FoldOp, Lambda, ScalarExpr};
use emma_compiler::interp::Catalog;
use emma_compiler::program::{Program, Stmt};
use emma_datagen::distributions::{self, KeyDistribution};

/// The sink receiving `(key, min)` rows.
pub const SINK: &str = "agg";

/// Builds the Fig. 5 aggregation over catalog dataset `"dataset"`.
pub fn program() -> Program {
    let agg = BagExpr::read("dataset")
        .group_by(Lambda::new(["t"], ScalarExpr::var("t").get(0)))
        .map(Lambda::new(
            ["g"],
            ScalarExpr::Tuple(vec![
                ScalarExpr::var("g").get(0),
                BagExpr::of_value(ScalarExpr::var("g").get(1))
                    .map(Lambda::new(["t"], ScalarExpr::var("t").get(1)))
                    .fold(FoldOp::min()),
            ]),
        ));
    Program::new(vec![Stmt::write(SINK, agg)])
}

/// Builds the catalog: `n` keyed tuples over `num_keys` keys drawn from the
/// given distribution.
pub fn catalog(n: usize, num_keys: i64, dist: KeyDistribution, seed: u64) -> Catalog {
    Catalog::new().with(
        "dataset",
        distributions::keyed_tuples(n, num_keys, dist, seed),
    )
}
