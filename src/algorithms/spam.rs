//! The spam-classifier selection workflow (paper, Listing 5 / Section 5.1).
//!
//! This is the Figure 4 program: a driver loop over trained classifiers, a
//! feature-extraction map over the email corpus, a nested existential
//! predicate against a mail-server blacklist, and scalar folds feeding an
//! `if`. All four optimization families apply (Table 1):
//!
//! * **Unnesting** turns `blacklist.exists(_.ip == email.ip)` into a
//!   semi-join so the runtime can pick a repartition strategy instead of
//!   broadcasting the blacklist to every node, every iteration;
//! * **Caching** amortizes the `extractFeatures` map (and the blacklist
//!   scan) across classifier iterations;
//! * **Partition Pulling** enforces the ip-hash partitioning of both inputs
//!   *before* the loop, inside the cache, so the per-iteration join pays no
//!   shuffle;
//! * the two `count()` calls are driver-side folds over the same bag — the
//!   caching heuristic also spares the second one.

use emma_compiler::bag_expr::BagExpr;
use emma_compiler::expr::{BuiltinFn, Lambda, ScalarExpr};
use emma_compiler::interp::Catalog;
use emma_compiler::program::{Program, Stmt};
use emma_compiler::value::Value;
use emma_datagen::emails::{self, EmailSpec};

/// The sink receiving `(best_classifier, min_hits)`.
pub const SINK: &str = "best";

/// Builds the quoted workflow over catalog datasets `"emails_raw"` and
/// `"blacklist"`, iterating over the given classifier thresholds.
pub fn program(classifiers: Vec<Value>) -> Program {
    // extractFeatures: (ip, subject, body) ⟼ (ip, body, feature)
    // with feature = hash(body) % 100 — a deterministic stand-in for a
    // trained model's score.
    let extract_features = Lambda::new(
        ["e"],
        ScalarExpr::Tuple(vec![
            ScalarExpr::var("e").get(0),
            ScalarExpr::var("e").get(2),
            ScalarExpr::call(BuiltinFn::HashOf, vec![ScalarExpr::var("e").get(2)])
                .rem(ScalarExpr::lit(100i64)),
        ]),
    );
    // isSpam(c, email) = email.feature < c  — so nonSpam keeps the rest.
    let non_spam = BagExpr::var("emails").filter(Lambda::new(
        ["m"],
        ScalarExpr::var("m").get(2).lt(ScalarExpr::var("c")).not(),
    ));
    // non-spam emails coming from a blacklisted server.
    let non_spam_from_bl = BagExpr::var("nonSpamEmails").filter(Lambda::new(
        ["m"],
        BagExpr::var("blacklist").exists(Lambda::new(
            ["l"],
            ScalarExpr::var("l").get(0).eq(ScalarExpr::var("m").get(0)),
        )),
    ));

    Program::new(vec![
        Stmt::val("emails", BagExpr::read("emails_raw").map(extract_features)),
        Stmt::val("blacklist", BagExpr::read("blacklist")),
        Stmt::var("minHits", ScalarExpr::lit(i64::MAX)),
        Stmt::var("minClassifier", ScalarExpr::lit(-1i64)),
        Stmt::for_each(
            "c",
            ScalarExpr::lit(Value::bag(classifiers)),
            vec![
                Stmt::val("nonSpamEmails", non_spam),
                Stmt::val("nonSpamFromBlServer", non_spam_from_bl),
                Stmt::if_else(
                    // Listing 5 calls count() in the condition and again in
                    // the assignment — kept verbatim (the cache spares the
                    // second execution).
                    BagExpr::var("nonSpamFromBlServer")
                        .count()
                        .lt(ScalarExpr::var("minHits")),
                    vec![
                        Stmt::assign("minHits", BagExpr::var("nonSpamFromBlServer").count()),
                        Stmt::assign("minClassifier", ScalarExpr::var("c")),
                    ],
                    vec![],
                ),
            ],
        ),
        Stmt::write(
            SINK,
            BagExpr::Values(vec![Value::Int(0)]).map(Lambda::new(
                ["z"],
                ScalarExpr::Tuple(vec![
                    ScalarExpr::var("minClassifier"),
                    ScalarExpr::var("minHits"),
                ]),
            )),
        ),
    ])
}

/// Builds the catalog for an email-dataset spec.
pub fn catalog(spec: &EmailSpec) -> Catalog {
    let (emails_rows, blacklist_rows) = emails::generate(spec);
    Catalog::new()
        .with("emails_raw", emails_rows)
        .with("blacklist", blacklist_rows)
}
