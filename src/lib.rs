//! # Emma — implicit parallelism through deep language embedding
//!
//! A Rust reproduction of *"Implicit Parallelism through Deep Language
//! Embedding"* (Alexandrov et al., SIGMOD 2015): a language for parallel
//! data analysis whose programs look like ordinary driver code over a
//! `DataBag` abstraction, compiled holistically through a
//! monad-comprehension intermediate representation and executed on
//! interchangeable parallel runtimes.
//!
//! The workspace is organized exactly like the system in the paper:
//!
//! * [`emma_core`] — the typed, local `DataBag` (host-language execution):
//!   bags in union representation, structural recursion via `fold`,
//!   `group_by` with first-class nested bags, and `StatefulBag` for
//!   point-wise iterative refinement.
//! * [`emma_compiler`] — the deep embedding: quoted programs, comprehension
//!   recovery (MC⁻¹), normalization (fusion + exists-unnesting), fold-group
//!   fusion (banana split + fold-build fusion), combinator lowering
//!   (Fig. 2/3a), and the physical optimizations (caching, partition
//!   pulling, broadcast insertion).
//! * [`emma_engine`] — the simulated cluster substrate with two engine
//!   personalities: **Sparrow** (Spark-like) and **Flamingo** (Flink-like).
//! * [`emma_datagen`] — synthetic workloads mirroring the paper's datasets.
//! * [`algorithms`] — every program evaluated in the paper (k-means,
//!   PageRank, Connected Components, TPC-H Q1/Q4, the spam-classifier
//!   workflow, the Fig. 5 group aggregation), written once against the
//!   embedded language and reused by the examples, tests, and the
//!   figure/table-regenerating benchmark harness in `emma-bench`.
//!
//! ## Quickstart
//!
//! ```
//! use emma::prelude::*;
//!
//! // Quote a program: count words longer than 3 characters, per word.
//! let program = Program::new(vec![Stmt::write(
//!     "counts",
//!     BagExpr::read("words")
//!         .filter(Lambda::new(["w"], ScalarExpr::call(
//!             BuiltinFn::StrLen, vec![ScalarExpr::var("w")],
//!         ).gt(ScalarExpr::lit(3i64))))
//!         .group_by(Lambda::new(["w"], ScalarExpr::var("w")))
//!         .map(Lambda::new(["g"], ScalarExpr::Tuple(vec![
//!             ScalarExpr::var("g").get(0),
//!             BagExpr::of_value(ScalarExpr::var("g").get(1)).count(),
//!         ]))),
//! )]);
//!
//! let catalog = Catalog::new().with(
//!     "words",
//!     ["emma", "bag", "fold", "emma"].iter().map(|w| Value::str(*w)).collect(),
//! );
//!
//! // Compile (all optimizations) and run on the Spark-like engine.
//! let compiled = parallelize(&program, &OptimizerFlags::all());
//! assert_eq!(compiled.report.fold_group_fused, 1); // groupBy+count fused to aggBy
//! let run = Engine::sparrow().run(&compiled, &catalog).unwrap();
//! let counts = &run.writes["counts"];
//! assert!(counts.contains(&Value::tuple(vec![Value::str("emma"), Value::Int(2)])));
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod apis;

pub use emma_compiler;
pub use emma_core;
pub use emma_datagen;
pub use emma_engine;

/// Everything needed to write, compile, and run Emma programs.
pub mod prelude {
    pub use emma_compiler::bag_expr::{BagExpr, BagLambda};
    pub use emma_compiler::expr::{BinOp, BuiltinFn, FoldKind, FoldOp, Lambda, ScalarExpr, UnOp};
    pub use emma_compiler::interp::{Catalog, Interp, RunOutput};
    pub use emma_compiler::pipeline::{
        parallelize, CompiledProgram, OptimizationReport, OptimizerFlags,
    };
    pub use emma_compiler::plan::Plan;
    pub use emma_compiler::program::{Program, RValue, Stmt};
    pub use emma_compiler::value::{Value, ValueError};
    pub use emma_core::{DataBag, Grp, Keyed, StatefulBag};
    pub use emma_engine::{
        AdmissionDecision, BatchConfig, CheckpointConfig, CheckpointPolicy, ClusterSpec,
        CostDrivenConfig, Engine, EngineRun, ExecError, ExecStats, FaultConfig, Personality,
        ServiceConfig, ServiceStats, SessionService, SkewConfig,
    };
}
