//! Domain-specific APIs layered on the `DataBag` abstraction — the paper's
//! stated future work (§7: *"We are developing linear algebra and graph
//! processing APIs on top of the DataBag API"*).
//!
//! All three APIs are thin, domain-agnostic layers: [`graph`] expresses
//! vertex-centric iteration through `StatefulBag` point-wise updates exactly
//! as Section 3.1 prescribes, [`linalg`] represents sparse matrices as
//! bags of coordinate triples whose operations are comprehensions and folds
//! — so everything they do stays inside the optimizable core language —
//! and [`service`] serves many compiled programs concurrently over one
//! shared store of cached bags.

pub mod graph;
pub mod linalg;
pub mod service;
