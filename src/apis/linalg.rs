//! A sparse linear-algebra API on top of `DataBag` (paper §7 future work).
//!
//! A [`SparseMatrix`] is a bag of coordinate triples `(row, col, value)`;
//! every operation is a comprehension or a fold over that bag, so the whole
//! API stays inside the optimizable core language: matrix–vector and
//! matrix–matrix products are join-then-aggregate comprehensions (exactly
//! the shape fold-group fusion turns into combiner-side aggregations), and
//! reductions are folds.

use emma_core::DataBag;
use std::collections::HashMap;

/// A sparse matrix in coordinate (COO) form.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    entries: DataBag<(usize, usize, f64)>,
}

/// A sparse vector as a bag of `(index, value)` pairs.
#[derive(Clone, Debug)]
pub struct SparseVector {
    /// Dimension.
    pub dim: usize,
    entries: DataBag<(usize, f64)>,
}

impl SparseMatrix {
    /// Builds a matrix from coordinate triples, dropping explicit zeros and
    /// summing duplicates (bag semantics make duplicate handling a fold).
    pub fn from_triples(
        rows: usize,
        cols: usize,
        triples: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let raw = DataBag::from_seq(triples);
        for (r, c, _) in raw.iter() {
            assert!(*r < rows && *c < cols, "entry ({r},{c}) out of bounds");
        }
        let entries = raw
            .group_by(|(r, c, _)| (*r, *c))
            .map(|g| {
                let (r, c) = g.key;
                (r, c, g.values.sum_by(|(_, _, v)| *v))
            })
            .with_filter(|(_, _, v)| *v != 0.0);
        SparseMatrix {
            rows,
            cols,
            entries,
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_triples(n, n, (0..n).map(|i| (i, i, 1.0)))
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.count() as usize
    }

    /// The transpose — a pure map.
    pub fn transpose(&self) -> SparseMatrix {
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.map(|(r, c, v)| (*c, *r, *v)),
        }
    }

    /// Element-wise scaling — a pure map.
    pub fn scale(&self, s: f64) -> SparseMatrix {
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            entries: self
                .entries
                .map(|(r, c, v)| (*r, *c, *v * s))
                .with_filter(|(_, _, v)| *v != 0.0),
        }
    }

    /// Matrix sum — bag union then per-coordinate fold.
    pub fn add(&self, other: &SparseMatrix) -> SparseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        SparseMatrix::from_triples(
            self.rows,
            self.cols,
            self.entries.plus(&other.entries).fetch(),
        )
    }

    /// Matrix–vector product: the comprehension
    /// `for ((r,c,v) <- M; (i,x) <- xs; if c == i) yield (r, v*x)`
    /// followed by a per-row sum.
    pub fn matvec(&self, x: &SparseVector) -> SparseVector {
        assert_eq!(self.cols, x.dim, "dimension mismatch");
        let xs: HashMap<usize, f64> = x.entries.iter().copied().collect();
        let products = self.entries.flat_map(|(r, c, v)| match xs.get(c) {
            Some(xv) => DataBag::of((*r, *v * *xv)),
            None => DataBag::empty(),
        });
        let entries = products
            .group_by(|(r, _)| *r)
            .map(|g| (g.key, g.values.sum_by(|(_, p)| *p)))
            .with_filter(|(_, v)| *v != 0.0);
        SparseVector {
            dim: self.rows,
            entries,
        }
    }

    /// Matrix–matrix product: join on the shared dimension, then the
    /// `(row, col)`-keyed sum — the canonical groupBy+fold shape.
    pub fn matmul(&self, other: &SparseMatrix) -> SparseMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut by_row: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
        for (r, c, v) in other.entries.iter() {
            by_row.entry(*r).or_default().push((*c, *v));
        }
        let products = self.entries.flat_map(|(i, k, a)| match by_row.get(k) {
            Some(row) => DataBag::from_seq(row.iter().map(|(j, b)| (*i, *j, *a * *b))),
            None => DataBag::empty(),
        });
        SparseMatrix::from_triples(self.rows, other.cols, products.fetch())
    }

    /// Frobenius norm — a single fold.
    pub fn frobenius_norm(&self) -> f64 {
        self.entries.sum_by(|(_, _, v)| v * v).sqrt()
    }

    /// Densifies into a row-major vector (tests / small outputs).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for (r, c, v) in self.entries.iter() {
            out[*r][*c] = *v;
        }
        out
    }
}

impl SparseVector {
    /// Builds a vector from `(index, value)` pairs (duplicates sum).
    pub fn from_pairs(dim: usize, pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let raw = DataBag::from_seq(pairs);
        for (i, _) in raw.iter() {
            assert!(*i < dim, "index {i} out of bounds");
        }
        let entries = raw
            .group_by(|(i, _)| *i)
            .map(|g| (g.key, g.values.sum_by(|(_, v)| *v)))
            .with_filter(|(_, v)| *v != 0.0);
        SparseVector { dim, entries }
    }

    /// A dense vector of ones (PageRank-style starting point).
    pub fn ones(dim: usize) -> Self {
        Self::from_pairs(dim, (0..dim).map(|i| (i, 1.0)))
    }

    /// Dot product — join on indexes, fold the products.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        assert_eq!(self.dim, other.dim);
        let rhs: HashMap<usize, f64> = other.entries.iter().copied().collect();
        self.entries
            .sum_by(|(i, v)| v * rhs.get(i).copied().unwrap_or(0.0))
    }

    /// Euclidean norm — a fold.
    pub fn norm(&self) -> f64 {
        self.entries.sum_by(|(_, v)| v * v).sqrt()
    }

    /// Densifies.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.entries.iter() {
            out[*i] = *v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> SparseMatrix {
        // [1 2]
        // [0 3]
        SparseMatrix::from_triples(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let a = SparseMatrix::from_triples(2, 2, [(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.to_dense(), vec![vec![3.0, 0.0], vec![0.0, 0.0]]);
    }

    #[test]
    fn matvec_matches_dense_arithmetic() {
        let x = SparseVector::from_pairs(2, [(0, 10.0), (1, 100.0)]);
        let y = m().matvec(&x);
        assert_eq!(y.to_dense(), vec![210.0, 300.0]);
    }

    #[test]
    fn matmul_matches_dense_arithmetic() {
        let b = SparseMatrix::from_triples(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]); // swap
        let ab = m().matmul(&b);
        assert_eq!(ab.to_dense(), vec![vec![2.0, 1.0], vec![3.0, 0.0]]);
    }

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = m();
        let i = SparseMatrix::identity(2);
        assert_eq!(a.matmul(&i).to_dense(), a.to_dense());
        assert_eq!(i.matmul(&a).to_dense(), a.to_dense());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = m();
        assert_eq!(a.transpose().transpose().to_dense(), a.to_dense());
    }

    #[test]
    fn add_and_scale() {
        let a = m();
        let sum = a.add(&a.scale(-1.0));
        assert_eq!(sum.nnz(), 0, "A + (-A) = 0");
        assert_eq!(a.scale(2.0).to_dense()[0][1], 4.0);
    }

    #[test]
    fn norms_and_dot() {
        let v = SparseVector::from_pairs(3, [(0, 3.0), (2, 4.0)]);
        assert_eq!(v.norm(), 5.0);
        let w = SparseVector::from_pairs(3, [(0, 1.0), (1, 9.0)]);
        assert_eq!(v.dot(&w), 3.0);
        assert!((m().frobenius_norm() - (1.0f64 + 4.0 + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvector() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1; the dominant eigenvector
        // is (1, 1)/√2.
        let a =
            SparseMatrix::from_triples(2, 2, [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)]);
        let mut x = SparseVector::from_pairs(2, [(0, 1.0), (1, 0.5)]);
        for _ in 0..50 {
            let y = a.matvec(&x);
            let n = y.norm();
            x = SparseVector::from_pairs(
                2,
                y.to_dense()
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (i, v / n)),
            );
        }
        let d = x.to_dense();
        assert!((d[0] - d[1]).abs() < 1e-6, "{d:?}");
    }
}
