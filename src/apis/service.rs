//! Multi-tenant serving API: submit many compiled programs against one
//! engine, one catalog, and one cross-session result cache.
//!
//! A thin convenience layer over [`emma_engine::service::SessionService`]
//! (DESIGN.md §3.11): the service scores each program with the engine's
//! cost model, admits it against the [`ServiceConfig`] budgets, and
//! executes admitted sessions in a driver-ordered schedule so the whole
//! transcript — results, per-session stats, admission decisions, the
//! aggregate sim clock — replays bit-identically however many worker
//! threads each run fans out over.

pub use emma_engine::{
    AdmissionDecision, CostEstimate, ServiceConfig, ServiceStats, SessionCacheStats, SessionReport,
    SessionService, SharedCatalogCache,
};

use emma_compiler::interp::Catalog;
use emma_compiler::pipeline::CompiledProgram;
use emma_engine::Engine;

/// Submits every program in order, drains the service, and returns it for
/// inspection — the one-call path for "run these queries concurrently
/// against shared cached bags".
///
/// ```
/// use emma::apis::service::{run_concurrently, ServiceConfig};
/// use emma::prelude::*;
///
/// let catalog = Catalog::new().with("xs", (0..32).map(Value::Int).collect());
/// let prog = |sink: &str| {
///     parallelize(
///         &Program::new(vec![Stmt::write(sink.to_string(), BagExpr::read("xs"))]),
///         &OptimizerFlags::all(),
///     )
/// };
/// let svc = run_concurrently(
///     Engine::new(ClusterSpec::tiny(), Personality::sparrow()),
///     catalog,
///     &[prog("a"), prog("b")],
///     ServiceConfig::default(),
/// );
/// assert_eq!(svc.stats().completed, 2);
/// assert_eq!(svc.report(1).run().unwrap().writes["b"].len(), 32);
/// ```
pub fn run_concurrently(
    engine: Engine,
    catalog: Catalog,
    progs: &[CompiledProgram],
    config: ServiceConfig,
) -> SessionService {
    let mut svc = SessionService::new(engine, catalog, config);
    for p in progs {
        svc.submit(p);
    }
    svc.drain();
    svc
}
