//! A vertex-centric graph API on top of `DataBag` + `StatefulBag`
//! (paper §3.1: stateful bags capture "vertex-centric" models
//! domain-agnostically; §7 names a graph API as future work).
//!
//! A [`Graph`] holds per-vertex state; [`Graph::pregel`] runs synchronous
//! message-passing supersteps: every (changed) vertex sends messages along
//! its out-edges, messages to a vertex are combined with an associative
//! commutative function (a fold!), and a point-wise update decides whether
//! the vertex changes — semi-naive iteration falls out of `StatefulBag`'s
//! changed-delta for free.

use emma_core::{DataBag, Keyed, StatefulBag};
use std::collections::HashMap;

/// Per-vertex state: id, out-neighbors, and a user value.
#[derive(Clone, Debug, PartialEq)]
pub struct Vertex<V> {
    /// Vertex id.
    pub id: i64,
    /// Out-neighbor ids.
    pub out: Vec<i64>,
    /// The algorithm's per-vertex value.
    pub value: V,
}

impl<V: Clone> Keyed for Vertex<V> {
    type Key = i64;
    fn key(&self) -> i64 {
        self.id
    }
}

/// A message addressed to a vertex.
#[derive(Clone, Debug)]
pub struct Message<M> {
    /// Receiver vertex id.
    pub to: i64,
    /// Payload.
    pub payload: M,
}

impl<M: Clone> Keyed for Message<M> {
    type Key = i64;
    fn key(&self) -> i64 {
        self.to
    }
}

/// A graph with per-vertex values.
pub struct Graph<V: Clone> {
    state: StatefulBag<Vertex<V>>,
}

impl<V: Clone + PartialEq + 'static> Graph<V> {
    /// Builds a graph from `(id, out-neighbors)` adjacency and an initial
    /// value function.
    pub fn new(adjacency: &[(i64, Vec<i64>)], init: impl Fn(i64) -> V) -> Self {
        let vertices = DataBag::from_seq(adjacency.iter().map(|(id, out)| Vertex {
            id: *id,
            out: out.clone(),
            value: init(*id),
        }));
        Graph {
            state: StatefulBag::new(vertices),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.state.len()
    }

    /// Snapshot of `(id, value)` pairs.
    pub fn values(&self) -> Vec<(i64, V)> {
        self.state.bag().map(|v| (v.id, v.value.clone())).fetch()
    }

    /// Out-degree per vertex.
    pub fn out_degrees(&self) -> Vec<(i64, usize)> {
        self.state.bag().map(|v| (v.id, v.out.len())).fetch()
    }

    /// In-degree per vertex — a groupBy + count over the edge bag, i.e. a
    /// fold-group-fusable aggregation in the core language.
    pub fn in_degrees(&self) -> Vec<(i64, u64)> {
        let edges = self
            .state
            .bag()
            .flat_map(|v| DataBag::from_seq(v.out.iter().copied()));
        let mut degrees: Vec<(i64, u64)> = edges
            .group_by(|dst| *dst)
            .map(|g| (g.key, g.values.count()))
            .fetch();
        // Vertices nobody points at.
        let with_in: std::collections::HashSet<i64> = degrees.iter().map(|(v, _)| *v).collect();
        for v in self.state.bag().iter() {
            if !with_in.contains(&v.id) {
                degrees.push((v.id, 0));
            }
        }
        degrees
    }

    /// Synchronous vertex-centric iteration (Pregel-style), expressed with
    /// the core-language pieces:
    ///
    /// * `send(vertex) → payload` — each *changed* vertex sends its payload
    ///   along every out-edge (a flatMap over the delta);
    /// * `combine` — associative-commutative merge of payloads per receiver
    ///   (a fold; distributed execution pre-aggregates it combiner-side);
    /// * `apply(old, combined) → Option<new>` — the point-wise state update;
    ///   returning `None` leaves the vertex unchanged and (semi-naively)
    ///   silent next round.
    ///
    /// Runs until no vertex changes or `max_supersteps` is reached; returns
    /// the number of supersteps executed.
    pub fn pregel<M: Clone + 'static>(
        &mut self,
        max_supersteps: usize,
        send: impl Fn(&Vertex<V>) -> M,
        combine: impl Fn(M, M) -> M,
        apply: impl Fn(&V, &M) -> Option<V>,
    ) -> usize {
        let mut delta = self.state.bag();
        let mut steps = 0;
        while !delta.is_empty() && steps < max_supersteps {
            steps += 1;
            let messages: DataBag<Message<M>> = delta.flat_map(|v| {
                let payload = send(v);
                DataBag::from_seq(v.out.iter().map(|to| Message {
                    to: *to,
                    payload: payload.clone(),
                }))
            });
            // Combine per receiver (the per-key fold).
            let mut combined: HashMap<i64, M> = HashMap::new();
            for m in messages {
                match combined.remove(&m.to) {
                    Some(acc) => {
                        combined.insert(m.to, combine(acc, m.payload));
                    }
                    None => {
                        combined.insert(m.to, m.payload);
                    }
                }
            }
            let updates = DataBag::from_seq(
                combined
                    .into_iter()
                    .map(|(to, payload)| Message { to, payload }),
            );
            delta = self.state.update_with_messages(updates, |vertex, msg| {
                apply(&vertex.value, &msg.payload).map(|value| Vertex {
                    value,
                    ..vertex.clone()
                })
            });
        }
        steps
    }
}

/// Connected components via max-label propagation (Listing 7 as three lines
/// of the graph API). Returns `(id, component)`.
pub fn connected_components(adjacency: &[(i64, Vec<i64>)]) -> Vec<(i64, i64)> {
    let mut g = Graph::new(adjacency, |id| id);
    g.pregel(
        usize::MAX,
        |v| v.value,
        i64::max,
        |old, msg| if msg > old { Some(*msg) } else { None },
    );
    g.values()
}

/// PageRank with a fixed iteration count (Listing 6 through the graph API).
/// Returns `(id, rank)`.
pub fn pagerank(adjacency: &[(i64, Vec<i64>)], damping: f64, iterations: usize) -> Vec<(i64, f64)> {
    let n = adjacency.len() as f64;
    let mut g = Graph::new(adjacency, |_| 1.0 / n);
    for _ in 0..iterations {
        // One superstep per iteration: every vertex resends each round.
        let degrees: HashMap<i64, usize> = g.out_degrees().into_iter().collect();
        let mut shares = Graph::new(adjacency, |_| 0.0);
        // Transfer current values into the sender graph.
        let current: HashMap<i64, f64> = g.values().into_iter().collect();
        shares.pregel(
            1,
            |v| current[&v.id] / degrees[&v.id].max(1) as f64,
            |a, b| a + b,
            |_, in_sum| Some((1.0 - damping) / n + damping * in_sum),
        );
        // Vertices that received no messages decay to the damping floor,
        // like the dataflow variant.
        let received: HashMap<i64, f64> = shares
            .values()
            .into_iter()
            .filter(|(_, v)| *v != 0.0)
            .collect();
        g = Graph::new(adjacency, |id| {
            received.get(&id).copied().unwrap_or((1.0 - damping) / n)
        });
    }
    g.values()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_and_island() -> Vec<(i64, Vec<i64>)> {
        // 0 ↔ 1 ↔ 2 (undirected chain) and 3 ↔ 4 (island).
        vec![
            (0, vec![1]),
            (1, vec![0, 2]),
            (2, vec![1]),
            (3, vec![4]),
            (4, vec![3]),
        ]
    }

    #[test]
    fn connected_components_finds_both_components() {
        let comps: HashMap<i64, i64> = connected_components(&chain_and_island())
            .into_iter()
            .collect();
        assert_eq!(comps[&0], comps[&1]);
        assert_eq!(comps[&1], comps[&2]);
        assert_eq!(comps[&3], comps[&4]);
        assert_ne!(comps[&0], comps[&3]);
        // Max-label convention.
        assert_eq!(comps[&0], 2);
        assert_eq!(comps[&3], 4);
    }

    #[test]
    fn degrees_are_consistent() {
        let g = Graph::new(&chain_and_island(), |_| ());
        let out: HashMap<i64, usize> = g.out_degrees().into_iter().collect();
        assert_eq!(out[&1], 2);
        let ins: HashMap<i64, u64> = g.in_degrees().into_iter().collect();
        assert_eq!(ins[&1], 2);
        let total_out: usize = out.values().sum();
        let total_in: u64 = ins.values().sum();
        assert_eq!(total_out as u64, total_in);
    }

    #[test]
    fn pregel_stops_when_nothing_changes() {
        let mut g = Graph::new(&chain_and_island(), |id| id);
        let steps = g.pregel(
            100,
            |v| v.value,
            i64::max,
            |old, msg| if msg > old { Some(*msg) } else { None },
        );
        assert!(steps < 100, "converged in {steps} supersteps");
    }

    #[test]
    fn graph_api_pagerank_matches_stateful_listing6_ranking() {
        let adjacency = vec![
            (0, vec![1, 2]),
            (1, vec![0]),
            (2, vec![0]),
            (3, vec![0]), // 3 has no in-edges
        ];
        let ranks: HashMap<i64, f64> = pagerank(&adjacency, 0.85, 10).into_iter().collect();
        // Vertex 0 is most popular; 3 is at the floor.
        assert!(ranks[&0] > ranks[&1]);
        assert!(ranks[&1] > ranks[&3]);
        let floor = (1.0 - 0.85) / 4.0;
        assert!((ranks[&3] - floor).abs() < 1e-12);
    }
}
