//! Quickstart: the Emma workflow end to end.
//!
//! 1. Develop against the *typed local* `DataBag` — ordinary sequential
//!    collections (the paper's "host language execution").
//! 2. Quote the same logic as a driver [`Program`] over the analyzable
//!    expression language.
//! 3. `parallelize` it — watch which optimizations fire — and run it on the
//!    Spark-like and Flink-like engines, comparing results and cost stats.
//!
//! Run with: `cargo run --example quickstart`

use emma::prelude::*;

fn main() {
    // ----------------------------------------------------------- 1. local
    // Word count over a small corpus, written against the typed DataBag:
    // groupBy introduces *nested bags*, count is a fold.
    let words = DataBag::from_seq(
        "the quick brown fox jumps over the lazy dog the end"
            .split_whitespace()
            .map(str::to_string),
    );
    let local_counts: Vec<(String, u64)> = words
        .group_by(|w| w.clone())
        .map(|g| (g.key.clone(), g.values.count()))
        .fetch();
    println!("local word counts: {local_counts:?}");

    // ---------------------------------------------------------- 2. quoted
    // The same program as a quoted driver program. In Scala this quotation
    // is what the `parallelize` macro does to your code; here the program is
    // a first-class value.
    let program = Program::new(vec![Stmt::write(
        "counts",
        BagExpr::read("words")
            .group_by(Lambda::new(["w"], ScalarExpr::var("w")))
            .map(Lambda::new(
                ["g"],
                ScalarExpr::Tuple(vec![
                    ScalarExpr::var("g").get(0),
                    BagExpr::of_value(ScalarExpr::var("g").get(1)).count(),
                ]),
            )),
    )]);

    let catalog = Catalog::new().with(
        "words",
        "the quick brown fox jumps over the lazy dog the end"
            .split_whitespace()
            .map(Value::str)
            .collect(),
    );

    // The reference interpreter gives the sequential semantics.
    let reference = Interp::new(&catalog).run(&program).expect("interp");

    // ------------------------------------------------------- 3. parallelize
    let compiled = parallelize(&program, &OptimizerFlags::all());
    println!("\noptimizations fired: {}", compiled.report);
    assert_eq!(
        compiled.report.fold_group_fused, 1,
        "groupBy+count fuses into an aggBy"
    );

    for engine in [Engine::sparrow(), Engine::flamingo()] {
        let name = engine.personality.name;
        let run = engine.run(&compiled, &catalog).expect("engine run");
        // Same bag of results as the reference, on both engines.
        assert_eq!(
            Value::bag(run.writes["counts"].clone()),
            Value::bag(reference.writes["counts"].clone()),
        );
        println!("[{name}] stats: {}", run.stats);
    }

    println!("\nquickstart OK — identical results locally, interpreted, and on both engines.");
}
