//! TPC-H Q1 and Q4 (paper, Listings 8–9).
//!
//! Shows the declarativity story: Q1's nine aggregates are written as plain
//! folds over group values and fuse into a single `aggBy`; Q4's correlated
//! `EXISTS` keeps SQL's syntax level and compiles to a semi-join with a
//! pushed-down filter. Prints the query results like a TPC-H run.
//!
//! Run with: `cargo run --release --example tpch`

use emma::algorithms::tpch;
use emma::prelude::*;
use emma_datagen::tpch::TpchSpec;

fn main() {
    let catalog = tpch::catalog(&TpchSpec {
        scale: 4.0,
        seed: 1,
    });

    // ------------------------------------------------------------------ Q1
    let q1 = parallelize(&tpch::q1_program(), &OptimizerFlags::all());
    println!("Q1 optimizations: {}", q1.report);
    let run = Engine::sparrow().run(&q1, &catalog).expect("q1 run");
    let mut rows = run.writes[tpch::Q1_SINK].clone();
    rows.sort();
    println!("\nQ1 — pricing summary report:");
    println!("flag status    sum_qty  sum_base    avg_qty  avg_price  count");
    for r in &rows {
        println!(
            "{}    {}         {:>8.0} {:>10.0}  {:>7.2} {:>10.2} {:>6}",
            r.field(0).expect("flag"),
            r.field(1).expect("status"),
            r.field(2).expect("sum_qty").as_float().expect("f"),
            r.field(3).expect("sum_base").as_float().expect("f"),
            r.field(6).expect("avg_qty").as_float().expect("f"),
            r.field(7).expect("avg_price").as_float().expect("f"),
            r.field(9).expect("count"),
        );
    }
    assert_eq!(rows.len(), 6, "3 return flags × 2 line statuses");

    // ------------------------------------------------------------------ Q4
    let q4 = parallelize(&tpch::q4_program(), &OptimizerFlags::all());
    println!("\nQ4 optimizations: {}", q4.report);
    let run = Engine::sparrow().run(&q4, &catalog).expect("q4 run");
    let mut rows = run.writes[tpch::Q4_SINK].clone();
    rows.sort();
    println!("\nQ4 — order priority checking:");
    for r in &rows {
        println!(
            "{:<16} {:>6}",
            r.field(0).expect("priority"),
            r.field(1).expect("count"),
        );
    }
    assert!(!rows.is_empty());
    println!("\ntpch example OK");
}
