//! The paper's §7 future-work APIs, built on the `DataBag` abstraction:
//! vertex-centric graph processing (`emma::apis::graph`) and sparse linear
//! algebra (`emma::apis::linalg`). Computes PageRank two independent ways —
//! message passing and power iteration on the column-stochastic transition
//! matrix — and checks they agree.
//!
//! Run with: `cargo run --release --example graph_linalg_apis`

use emma::apis::{graph, linalg};
use emma_datagen::graph::{adjacency as gen_adjacency, GraphSpec};
use std::collections::HashMap;

fn main() {
    let spec = GraphSpec {
        vertices: 300,
        avg_degree: 6,
        skew: 1.2,
        seed: 21,
    };
    let adjacency: Vec<(i64, Vec<i64>)> = gen_adjacency(&spec)
        .iter()
        .map(|r| {
            (
                r.field(0).expect("id").as_int().expect("int"),
                r.field(1)
                    .expect("nbrs")
                    .as_bag()
                    .expect("bag")
                    .iter()
                    .map(|n| n.as_int().expect("int"))
                    .collect(),
            )
        })
        .collect();
    let n = adjacency.len();
    let damping = 0.85;
    let iters = 30;

    // --------------------------- 1. vertex-centric (StatefulBag supersteps)
    let vc: HashMap<i64, f64> = graph::pagerank(&adjacency, damping, iters)
        .into_iter()
        .collect();

    // --------------------------- 2. linear algebra (power iteration)
    // Column-stochastic transition matrix: M[j][i] = 1/outdeg(i) for i → j.
    let mut triples = Vec::new();
    for (i, out) in &adjacency {
        for j in out {
            triples.push((*j as usize, *i as usize, 1.0 / out.len() as f64));
        }
    }
    let m = linalg::SparseMatrix::from_triples(n, n, triples);
    let mut rank = linalg::SparseVector::from_pairs(n, (0..n).map(|i| (i, 1.0 / n as f64)));
    for _ in 0..iters {
        let spread = m.matvec(&rank).to_dense();
        rank = linalg::SparseVector::from_pairs(
            n,
            spread
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i, (1.0 - damping) / n as f64 + damping * v)),
        );
    }
    let la = rank.to_dense();

    // --------------------------- agreement
    let mut max_diff = 0.0f64;
    for (id, r) in &vc {
        max_diff = max_diff.max((r - la[*id as usize]).abs());
    }
    println!("max |vertex-centric − power-iteration| = {max_diff:.2e}");
    assert!(max_diff < 1e-9, "the two formulations must agree");

    let mut top: Vec<(i64, f64)> = vc.into_iter().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 vertices by rank: {:?}", &top[..5]);
    assert_eq!(top[0].0, 0, "the Zipf hub tops the ranking");

    // Connected components through the graph API (3 lines in user code).
    let comps = graph::connected_components(&adjacency);
    let labels: std::collections::HashSet<i64> = comps.iter().map(|(_, c)| *c).collect();
    println!(
        "{} vertices in {} weakly-connected label groups",
        n,
        labels.len()
    );
    println!("graph/linalg APIs example OK");
}
