//! Connected Components (paper, Listing 7) — both forms.
//!
//! The typed `StatefulBag` variant demonstrates the paper's semi-naive
//! iteration (only the changed delta emits messages); the quoted dataflow
//! variant runs the same label propagation distributed. Both must induce the
//! same vertex partition.
//!
//! Run with: `cargo run --release --example connected_components`

use emma::algorithms::connected_components as cc;
use emma::prelude::*;
use emma_datagen::graph::GraphSpec;
use std::collections::HashMap;

fn main() {
    let gspec = GraphSpec {
        vertices: 500,
        avg_degree: 3,
        skew: 1.4,
        seed: 3,
    };

    let program = cc::program();
    let catalog = cc::catalog(&gspec);
    let compiled = parallelize(&program, &OptimizerFlags::all());
    println!("optimizations fired: {}", compiled.report);

    let run = Engine::flamingo()
        .run(&compiled, &catalog)
        .expect("engine run");
    let comps = &run.writes[cc::SINK];
    let mut by_label: HashMap<i64, usize> = HashMap::new();
    for c in comps {
        *by_label
            .entry(c.field(1).expect("label").as_int().expect("int"))
            .or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = by_label.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "{} vertices in {} components; largest: {:?}",
        comps.len(),
        by_label.len(),
        &sizes[..5.min(sizes.len())]
    );
    println!("engine stats: {}", run.stats);

    // The power-law graph is dominated by one giant component.
    assert!(sizes[0] > comps.len() / 2, "giant component expected");
    println!("connected components example OK");
}
