//! The spam-classifier selection workflow (paper, Listing 5 / Figure 4).
//!
//! Runs the full workflow under the Figure 4 optimization ladder and prints
//! the runtime of each configuration — a miniature of the paper's headline
//! experiment. The chosen classifier must be identical in every
//! configuration (optimizations are semantics-preserving).
//!
//! Run with: `cargo run --release --example spam_classifier`

use emma::algorithms::spam;
use emma::prelude::*;
use emma_datagen::emails::{classifiers, EmailSpec};

fn main() {
    let spec = EmailSpec {
        emails: 1_000,
        blacklist: 300,
        ip_domain: 1_000,
        body_bytes: 120,
        info_bytes: 60,
        seed: 5,
    };
    let program = spam::program(classifiers(3));
    let catalog = spam::catalog(&spec);

    let ladder: [(&str, OptimizerFlags); 4] = [
        (
            "baseline (broadcast blacklist)",
            OptimizerFlags::all()
                .with_unnest_exists(false)
                .with_caching(false)
                .with_partition_pulling(false),
        ),
        (
            "unnesting (semi-join)",
            OptimizerFlags::all()
                .with_caching(false)
                .with_partition_pulling(false),
        ),
        (
            "unnesting + caching",
            OptimizerFlags::all().with_partition_pulling(false),
        ),
        (
            "unnesting + caching + partition pulling",
            OptimizerFlags::all(),
        ),
    ];

    let mut chosen = Vec::new();
    for (name, flags) in &ladder {
        let compiled = parallelize(&program, flags);
        let run = Engine::sparrow().run(&compiled, &catalog).expect("run");
        let best = &run.writes[spam::SINK][0];
        println!(
            "{name:<42} {:>8.2}s   best classifier = {}, hits = {}",
            run.stats.simulated_secs,
            best.field(0).expect("classifier"),
            best.field(1).expect("hits"),
        );
        chosen.push(best.clone());
    }
    assert!(
        chosen.windows(2).all(|w| w[0] == w[1]),
        "every configuration picks the same classifier"
    );
    println!("spam classifier example OK");
}
