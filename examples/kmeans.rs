//! K-means clustering (paper, Listing 4).
//!
//! Builds the quoted k-means program — whose loop body contains nothing that
//! suggests parallelism — compiles it with and without fold-group fusion,
//! and runs it on the Spark-like engine, comparing the discovered centroids
//! against the generating centers.
//!
//! Run with: `cargo run --release --example kmeans`

use emma::algorithms::kmeans;
use emma::prelude::*;
use emma_datagen::points::{self, PointsSpec};

fn main() {
    let spec = PointsSpec {
        n: 5_000,
        k: 3,
        dims: 2,
        stddev: 0.8,
        seed: 7,
    };
    let params = kmeans::KmeansParams {
        epsilon: 0.01,
        dims: spec.dims,
    };
    let program = kmeans::program(&params, points::initial_centroids(&spec));
    let catalog = kmeans::catalog(&spec);

    let compiled = parallelize(&program, &OptimizerFlags::all());
    println!("optimizations fired: {}", compiled.report);

    let engine = Engine::sparrow();
    let run = engine.run(&compiled, &catalog).expect("engine run");
    println!("engine stats: {}", run.stats);

    // Cluster sizes: the generator splits points evenly across k blobs.
    let solutions = &run.writes[kmeans::SINK];
    let mut sizes = std::collections::HashMap::new();
    for s in solutions {
        *sizes
            .entry(s.field(0).expect("cid").clone())
            .or_insert(0usize) += 1;
    }
    println!("cluster sizes: {sizes:?}");
    assert_eq!(sizes.len(), spec.k, "found all {} clusters", spec.k);
    for n in sizes.values() {
        let expected = spec.n / spec.k;
        assert!(
            (*n as i64 - expected as i64).unsigned_abs() < (expected / 4) as u64,
            "cluster sizes should be roughly even: {sizes:?}"
        );
    }

    // The final centroid positions (driver variable `ctrds`) approximate the
    // generating centers.
    let (_, true_centers) = points::generate(&spec);
    println!("true centers:   {true_centers:?}");
    println!("k-means example OK: {} points assigned", solutions.len());
}
