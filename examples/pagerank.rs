//! PageRank (paper, Listing 6) — both forms.
//!
//! First the *typed, local* Listing 6 verbatim: a `StatefulBag` of per-vertex
//! state refined with point-wise message updates. Then the quoted dataflow
//! form compiled and run on both engines, cross-checking the ranking of the
//! most popular vertices.
//!
//! Run with: `cargo run --release --example pagerank`

use emma::algorithms::pagerank;
use emma::prelude::*;
use emma_datagen::graph::{self, GraphSpec};

fn main() {
    let gspec = GraphSpec {
        vertices: 2_000,
        avg_degree: 8,
        skew: 1.2,
        seed: 11,
    };
    let params = pagerank::PagerankParams {
        damping: 0.85,
        iterations: 12,
        num_pages: gspec.vertices,
    };

    // ------------------------------------------------- typed local variant
    let adjacency_rows = graph::adjacency(&gspec);
    let adjacency: Vec<(i64, Vec<i64>)> = adjacency_rows
        .iter()
        .map(|r| {
            (
                r.field(0).expect("id").as_int().expect("int"),
                r.field(1)
                    .expect("nbrs")
                    .as_bag()
                    .expect("bag")
                    .iter()
                    .map(|n| n.as_int().expect("int"))
                    .collect(),
            )
        })
        .collect();
    let mut local = pagerank::local_pagerank_stateful(&adjacency, &params);
    local.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "local (StatefulBag) top-5: {:?}",
        &local[..5.min(local.len())]
    );

    // --------------------------------------------------- quoted + engines
    let program = pagerank::program(&params);
    let catalog = pagerank::catalog(&gspec);
    let compiled = parallelize(&program, &OptimizerFlags::all());
    println!("optimizations fired: {}", compiled.report);

    for engine in [Engine::sparrow(), Engine::flamingo()] {
        let name = engine.personality.name;
        let run = engine.run(&compiled, &catalog).expect("engine run");
        let mut ranks: Vec<(i64, f64)> = run.writes[pagerank::SINK]
            .iter()
            .map(|r| {
                (
                    r.field(0).expect("id").as_int().expect("int"),
                    r.field(1).expect("rank").as_float().expect("float"),
                )
            })
            .collect();
        ranks.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("[{name}] top-5: {:?}", &ranks[..5.min(ranks.len())]);
        println!("[{name}] stats: {}", run.stats);
        // The hub (vertex 0, most-linked under the Zipf popularity) must top
        // both variants.
        assert_eq!(ranks[0].0, 0, "hub vertex tops the dataflow ranking");
        assert_eq!(local[0].0, 0, "hub vertex tops the local ranking");
    }
    println!("pagerank example OK");
}
